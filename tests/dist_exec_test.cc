// End-to-end distributed execution: real worker processes spawned over
// socketpairs, the paper's five evaluation queries, and the core
// equivalence claim — a distributed run over W workers returns exactly
// the rows, in exactly the order, of an in-process run with
// partitions = W.

#include <gtest/gtest.h>

#include <dirent.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/sensor_generator.h"
#include "dist/dispatcher.h"
#include "service/query_service.h"
#include "stats/collection_stats.h"

#ifndef JPAR_WORKER_BIN_PATH
#error "build must define JPAR_WORKER_BIN_PATH (see tests/CMakeLists.txt)"
#endif

namespace jpar {
namespace {

constexpr const char* kQ0 = R"(
  for $r in collection("/sensors")("root")()("results")()
  let $datetime := dateTime(data($r("date")))
  where year-from-dateTime($datetime) ge 2003
    and month-from-dateTime($datetime) eq 12
    and day-from-dateTime($datetime) eq 25
  return $r)";

constexpr const char* kQ0b = R"(
  for $r in collection("/sensors")("root")()("results")()("date")
  let $datetime := dateTime(data($r))
  where year-from-dateTime($datetime) ge 2003
    and month-from-dateTime($datetime) eq 12
    and day-from-dateTime($datetime) eq 25
  return $r)";

constexpr const char* kQ1 = R"(
  for $r in collection("/sensors")("root")()("results")()
  where $r("dataType") eq "TMIN"
  group by $date := $r("date")
  return count($r("station")))";

constexpr const char* kQ1b = R"(
  for $r in collection("/sensors")("root")()("results")()
  where $r("dataType") eq "TMIN"
  group by $date := $r("date")
  return count(for $i in $r return $i("station")))";

constexpr const char* kQ2 = R"(
  avg(
    for $r_min in collection("/sensors")("root")()("results")()
    for $r_max in collection("/sensors")("root")()("results")()
    where $r_min("station") eq $r_max("station")
      and $r_min("date") eq $r_max("date")
      and $r_min("dataType") eq "TMIN"
      and $r_max("dataType") eq "TMAX"
    return $r_max("value") - $r_min("value")
  ) div 10)";

constexpr const char* kAllQueries[] = {kQ0, kQ0b, kQ1, kQ1b, kQ2};

Collection MakeData(uint64_t seed = 7) {
  SensorDataSpec spec;
  spec.num_files = 5;  // more files than the widest cluster
  spec.records_per_file = 8;
  spec.measurements_per_array = 16;
  spec.num_stations = 6;
  spec.seed = seed;
  return GenerateSensorCollection(spec);
}

DistOptions MakeDist(int workers) {
  DistOptions dist;
  dist.local_workers = workers;
  dist.worker_binary = JPAR_WORKER_BIN_PATH;
  return dist;
}

std::vector<std::string> Rows(const QueryOutput& output) {
  std::vector<std::string> rows;
  for (const Item& item : output.items) rows.push_back(item.ToJsonString());
  return rows;
}

TEST(DistExecTest, PaperQueriesByteIdenticalAcrossWorkerCounts) {
  for (int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EngineOptions options;
    options.rules = RuleOptions::All();
    options.exec.partitions = workers;
    Engine engine(options);
    engine.catalog()->RegisterCollection("/sensors", MakeData());

    Cluster cluster(MakeDist(workers));
    for (const char* query : kAllQueries) {
      SCOPED_TRACE(query);
      auto compiled = engine.Compile(query, options.rules);
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      ASSERT_TRUE(Cluster::CanDistribute(compiled->physical));

      auto local = engine.Execute(*compiled, options.exec);
      ASSERT_TRUE(local.ok()) << local.status().ToString();

      auto dist = cluster.Run(query, options.rules, options.exec, *compiled,
                              *engine.catalog(), nullptr);
      ASSERT_TRUE(dist.ok()) << dist.status().ToString();

      // Exact order, not just set equality: the star-topology routing
      // preserves the in-process exchange's source-rank order.
      EXPECT_EQ(Rows(*dist), Rows(*local));
      EXPECT_EQ(dist->stats.dist_workers, static_cast<uint64_t>(workers));
      EXPECT_GE(dist->stats.dist_rounds, 1u);
    }
    cluster.Stop();
  }
}

TEST(DistExecTest, DistributedBytecodeMatchesInProcessTreeRuns) {
  // The vectorized-execution equivalence claim (DESIGN.md §13) across
  // the wire: a distributed run with compiled expression bytecode must
  // stay byte-identical to an in-process legacy tuple-at-a-time run.
  // expr_mode travels in the fragment request, so the workers really
  // execute the batch path while the baseline really interprets trees.
  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    EngineOptions tree_options;
    tree_options.rules = RuleOptions::All();
    tree_options.exec.partitions = workers;
    tree_options.exec.expr_mode = ExprMode::kTree;
    Engine tree_engine(tree_options);
    tree_engine.catalog()->RegisterCollection("/sensors", MakeData());

    EngineOptions bc_options = tree_options;
    bc_options.exec.expr_mode = ExprMode::kBytecode;
    Engine bc_engine(bc_options);
    bc_engine.catalog()->RegisterCollection("/sensors", MakeData());

    Cluster cluster(MakeDist(workers));
    for (const char* query : kAllQueries) {
      SCOPED_TRACE(query);
      auto tree = tree_engine.Run(query);
      ASSERT_TRUE(tree.ok()) << tree.status().ToString();
      EXPECT_EQ(tree->stats.exprs_compiled, 0u);

      auto compiled = bc_engine.Compile(query, bc_options.rules);
      ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
      auto dist = cluster.Run(query, bc_options.rules, bc_options.exec,
                              *compiled, *bc_engine.catalog(), nullptr);
      ASSERT_TRUE(dist.ok()) << dist.status().ToString();

      EXPECT_EQ(Rows(*dist), Rows(*tree));
      EXPECT_EQ(dist->stats.dist_workers, static_cast<uint64_t>(workers));
    }
    cluster.Stop();
  }
}

TEST(DistExecTest, CatalogChangesResyncToWorkers) {
  EngineOptions options;
  options.rules = RuleOptions::All();
  options.exec.partitions = 2;
  Engine engine(options);
  engine.catalog()->RegisterCollection("/sensors", MakeData(/*seed=*/1));

  Cluster cluster(MakeDist(2));
  // A full-scan query whose row count tracks the registered data
  // (count(collection(...)) itself reads the source from an expression
  // and is not distributable).
  const char* count_query = R"(
    for $r in collection("/sensors")("root")()("results")()
    return $r("value"))";
  auto run_count = [&](const char* query) -> int64_t {
    auto compiled = engine.Compile(query, options.rules);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    if (!compiled.ok()) return -1;
    auto out = cluster.Run(query, options.rules, options.exec, *compiled,
                           *engine.catalog(), nullptr);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    if (!out.ok()) return -1;
    return static_cast<int64_t>(out->items.size());
  };

  int64_t before = run_count(count_query);
  EXPECT_GT(before, 0);

  // Re-register with more data: the catalog version bumps and the
  // next query must reach workers holding the new snapshot.
  SensorDataSpec bigger;
  bigger.num_files = 8;
  bigger.records_per_file = 8;
  bigger.measurements_per_array = 16;
  bigger.num_stations = 6;
  bigger.seed = 2;
  engine.catalog()->RegisterCollection("/sensors",
                                       GenerateSensorCollection(bigger));
  int64_t after = run_count(count_query);
  EXPECT_GT(after, before);
  cluster.Stop();
}

TEST(DistExecTest, UnsupportedPlansReportedNotMisrun) {
  Engine engine;
  auto compiled = engine.Compile("1 + 1", RuleOptions::All());
  ASSERT_TRUE(compiled.ok());
  EXPECT_FALSE(Cluster::CanDistribute(compiled->physical));

  Cluster cluster(MakeDist(1));
  auto out = cluster.Run("1 + 1", RuleOptions::All(), ExecOptions(),
                         *compiled, *engine.catalog(), nullptr);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnsupported);
  cluster.Stop();
}

TEST(DistExecTest, ServiceRoutesDistributableQueriesToCluster) {
  ServiceOptions options;
  options.engine.rules = RuleOptions::All();
  options.engine.exec.partitions = 2;
  options.dist = MakeDist(2);
  QueryService service(options);
  service.catalog()->RegisterCollection("/sensors", MakeData());

  // Reference rows from a plain in-process engine with the same setup.
  EngineOptions ref_options = options.engine;
  Engine reference(ref_options);
  reference.catalog()->RegisterCollection("/sensors", MakeData());

  auto session = service.CreateSession();
  for (const char* query : {kQ0, kQ1}) {
    SCOPED_TRACE(query);
    QueryTicket ticket = session->Submit(query);
    ASSERT_TRUE(ticket.status().ok()) << ticket.status().ToString();
    auto expected = reference.Run(query);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(Rows(ticket.output()), Rows(*expected));
    EXPECT_GT(ticket.output().stats.dist_workers, 0u);
  }

  // A constant expression cannot distribute; the service falls back
  // in-process and counts it.
  QueryTicket constant = session->Submit("1 + 1");
  ASSERT_TRUE(constant.status().ok()) << constant.status().ToString();
  EXPECT_EQ(constant.output().stats.dist_workers, 0u);

  service.Drain();
  ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.distributed, 2u);
  EXPECT_EQ(metrics.dist_fallbacks, 1u);
}

TEST(DistExecTest, RepeatedMultiStageRunsDoNotWedge) {
  // Regression: the dispatcher used to poison a worker's send window
  // *after* releasing the round lock when its output EOF arrived. A
  // descheduled reader could then land the poison on the *next*
  // round's freshly reset window, silently killing that round's
  // sender — the worker waited forever for inputs while heartbeats
  // kept it "alive". Back-to-back multi-stage (join) runs hammer the
  // inter-round boundary; the deadline turns any recurrence into a
  // clean kDeadlineExceeded failure instead of a hung test.
  EngineOptions options;
  options.rules = RuleOptions::All();
  options.exec.partitions = 2;
  Engine engine(options);
  engine.catalog()->RegisterCollection("/sensors", MakeData());

  Cluster cluster(MakeDist(2));
  auto compiled = engine.Compile(kQ2, options.rules);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto local = engine.Execute(*compiled, options.exec);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  const std::vector<std::string> expected = Rows(*local);

  for (int rep = 0; rep < 25; ++rep) {
    SCOPED_TRACE("rep=" + std::to_string(rep));
    QueryContext ctx;
    ctx.set_deadline_after_ms(20000);
    auto dist = cluster.Run(kQ2, options.rules, options.exec, *compiled,
                            *engine.catalog(), &ctx);
    ASSERT_TRUE(dist.ok()) << dist.status().ToString();
    EXPECT_EQ(Rows(*dist), expected);
  }
  cluster.Stop();
}

TEST(DistExecTest, RuleConfigurationsAgreeUnderDistribution) {
  // The no-two-step configuration shuffles raw tuples instead of
  // partials; both must produce the single-process answer.
  RuleOptions no_two_step = RuleOptions::All();
  no_two_step.two_step_aggregation = false;
  for (const RuleOptions& rules : {RuleOptions::All(), no_two_step}) {
    EngineOptions options;
    options.rules = rules;
    options.exec.partitions = 3;
    Engine engine(options);
    engine.catalog()->RegisterCollection("/sensors", MakeData());

    Cluster cluster(MakeDist(3));
    auto compiled = engine.Compile(kQ1, rules);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    auto local = engine.Execute(*compiled, options.exec);
    ASSERT_TRUE(local.ok()) << local.status().ToString();
    auto dist = cluster.Run(kQ1, rules, options.exec, *compiled,
                            *engine.catalog(), nullptr);
    ASSERT_TRUE(dist.ok()) << dist.status().ToString();
    EXPECT_EQ(Rows(*dist), Rows(*local));
    cluster.Stop();
  }
}

TEST(DistExecTest, StatsOnDistributedMatchesStatsOffInProcess) {
  // Cost-model differential across the wire (DESIGN.md §15): workers
  // recompile fragments against their own — possibly divergent — local
  // statistics, and stats_mode travels in the fragment request. A
  // stats-on distributed run must still return exactly the rows of a
  // stats-off in-process run. The corpus lives on disk so both the
  // coordinator and the workers genuinely sample it and share .jstats
  // sidecars.
  std::string tmpl = ::testing::TempDir() + "/jpar_dist_stats_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* made = ::mkdtemp(buf.data());
  ASSERT_NE(made, nullptr);
  const std::string dir = made;

  SensorDataSpec spec;
  spec.num_files = 5;
  spec.records_per_file = 8;
  spec.measurements_per_array = 16;
  spec.num_stations = 6;
  spec.seed = 7;
  Collection disk;
  for (int f = 0; f < spec.num_files; ++f) {
    std::string path = dir + "/sensors_" + std::to_string(f) + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << GenerateSensorFile(spec, f);
    out.close();
    disk.files.push_back(JsonFile::FromPath(path));
  }

  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    StatsStore::Instance().Clear();

    EngineOptions options;
    options.rules = RuleOptions::All();
    options.exec.partitions = workers;
    Engine engine(options);
    engine.catalog()->RegisterCollection("/sensors", disk);

    ExecOptions off_exec = options.exec;
    off_exec.stats_mode = StatsMode::kOff;

    Cluster cluster(MakeDist(workers));
    for (const char* query : kAllQueries) {
      SCOPED_TRACE(query);
      auto off_compiled = engine.Compile(query, options.rules, off_exec);
      ASSERT_TRUE(off_compiled.ok()) << off_compiled.status().ToString();
      auto off_local = engine.Execute(*off_compiled, off_exec);
      ASSERT_TRUE(off_local.ok()) << off_local.status().ToString();

      for (StatsMode mode : {StatsMode::kAuto, StatsMode::kForced}) {
        ExecOptions on_exec = options.exec;
        on_exec.stats_mode = mode;
        // An in-process warm-up builds the sidecars the workers will
        // load; the second compile then actually costs from them.
        auto warm = engine.Compile(query, options.rules, on_exec);
        ASSERT_TRUE(warm.ok()) << warm.status().ToString();
        ASSERT_TRUE(engine.Execute(*warm, on_exec).ok());

        auto on_compiled = engine.Compile(query, options.rules, on_exec);
        ASSERT_TRUE(on_compiled.ok()) << on_compiled.status().ToString();
        ASSERT_TRUE(Cluster::CanDistribute(on_compiled->physical));
        auto dist = cluster.Run(query, options.rules, on_exec, *on_compiled,
                                *engine.catalog(), nullptr);
        ASSERT_TRUE(dist.ok()) << dist.status().ToString();
        EXPECT_EQ(Rows(*dist), Rows(*off_local))
            << "stats mode " << static_cast<int>(mode);
        EXPECT_EQ(dist->stats.dist_workers, static_cast<uint64_t>(workers));
      }
    }
    cluster.Stop();
  }

  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

}  // namespace
}  // namespace jpar
