// End-to-end tests of the Engine facade: compile + execute the paper's
// query shapes against small in-memory datasets, with rules on and off,
// asserting identical results and the expected plan transformations.

#include "core/engine.h"

#include <gtest/gtest.h>

#include "data/sensor_generator.h"

namespace jpar {
namespace {

// The bookstore document of the paper's Listing 1.
constexpr const char* kBookstoreJson = R"({
  "bookstore": {
    "book": [
      {"-category": "COOKING", "title": "Everyday Italian",
       "author": "Giada De Laurentiis", "year": "2005", "price": "30.00"},
      {"-category": "CHILDREN", "title": "Harry Potter",
       "author": "J K. Rowling", "year": "2005", "price": "29.99"},
      {"-category": "WEB", "title": "Learning XML",
       "author": "Erik T. Ray", "year": "2003", "price": "39.95"}
    ]
  }
})";

Engine MakeBookstoreEngine(RuleOptions rules = RuleOptions::All()) {
  EngineOptions options;
  options.rules = rules;
  Engine engine(options);
  engine.catalog()->RegisterDocument("books.json",
                                     JsonFile::FromText(kBookstoreJson));
  Collection books;
  books.files.push_back(JsonFile::FromText(kBookstoreJson));
  engine.catalog()->RegisterCollection("/books", std::move(books));
  return engine;
}

TEST(EngineTest, BookstoreJsonDocQuery) {
  // Paper Listing 2.
  Engine engine = MakeBookstoreEngine();
  auto result = engine.Run(
      R"(json-doc("books.json")("bookstore")("book")())");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->items.size(), 3u);
  EXPECT_EQ(*result->items[0].GetField("title"),
            Item::String("Everyday Italian"));
  EXPECT_EQ(result->items[2].GetField("author")->string_value(),
            "Erik T. Ray");
}

TEST(EngineTest, BookstoreCollectionQuery) {
  // Paper Listing 3.
  Engine engine = MakeBookstoreEngine();
  auto result = engine.Run(R"(collection("/books")("bookstore")("book")())");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->items.size(), 3u);
}

TEST(EngineTest, CollectionQueryPlanUsesDataScan) {
  Engine engine = MakeBookstoreEngine();
  auto compiled =
      engine.Compile(R"(collection("/books")("bookstore")("book")())");
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  // The naive plan reads via ASSIGN collection(...).
  EXPECT_NE(compiled->original_plan.find("collection"), std::string::npos);
  EXPECT_EQ(compiled->original_plan.find("DATASCAN"), std::string::npos);
  // The optimized plan is a single DATASCAN with all steps merged
  // (paper Fig. 8).
  EXPECT_NE(compiled->optimized_plan.find(
                "<- collection(\"/books\")(\"bookstore\")(\"book\")()"),
            std::string::npos)
      << compiled->optimized_plan;
  EXPECT_NE(compiled->optimized_plan.find("DATASCAN"), std::string::npos);
  // All ASSIGN/UNNEST steps were absorbed by the scan.
  EXPECT_EQ(compiled->optimized_plan.find("ASSIGN"), std::string::npos)
      << compiled->optimized_plan;
  EXPECT_EQ(compiled->optimized_plan.find("UNNEST"), std::string::npos)
      << compiled->optimized_plan;
}

TEST(EngineTest, BookstoreGroupByCount) {
  // Paper Listing 4.
  Engine engine = MakeBookstoreEngine();
  auto result = engine.Run(R"(
    for $x in collection("/books")("bookstore")("book")()
    group by $author := $x("author")
    return count($x("title")))");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Three distinct authors, one book each.
  ASSERT_EQ(result->items.size(), 3u);
  for (const Item& item : result->items) {
    EXPECT_EQ(item, Item::Int64(1));
  }
}

TEST(EngineTest, BookstoreGroupByCountSecondForm) {
  // Paper Listing 5 (the nested-FLWOR count).
  Engine engine = MakeBookstoreEngine();
  auto result = engine.Run(R"(
    for $x in collection("/books")("bookstore")("book")()
    group by $author := $x("author")
    return count(for $j in $x return $j("title")))");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->items.size(), 3u);
  for (const Item& item : result->items) {
    EXPECT_EQ(item, Item::Int64(1));
  }
}

TEST(EngineTest, RulesOnAndOffAgreeOnBookstore) {
  const char* queries[] = {
      R"(collection("/books")("bookstore")("book")())",
      R"(for $x in collection("/books")("bookstore")("book")()
         group by $author := $x("author")
         return count($x("title")))",
  };
  for (const char* query : queries) {
    Engine with_rules = MakeBookstoreEngine(RuleOptions::All());
    Engine without_rules = MakeBookstoreEngine(RuleOptions::None());
    auto a = with_rules.Run(query);
    auto b = without_rules.Run(query);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(a->items.size(), b->items.size()) << query;
    // Group-by output order may differ between plans; compare as
    // multisets via serialized form.
    std::vector<std::string> sa, sb;
    for (const Item& i : a->items) sa.push_back(i.ToJsonString());
    for (const Item& i : b->items) sb.push_back(i.ToJsonString());
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    EXPECT_EQ(sa, sb) << query;
  }
}

TEST(EngineTest, SensorSelectionQueryQ0) {
  EngineOptions options;
  Engine engine(options);
  SensorDataSpec spec;
  spec.num_files = 2;
  spec.records_per_file = 8;
  spec.measurements_per_array = 10;
  engine.catalog()->RegisterCollection("/sensors",
                                       GenerateSensorCollection(spec));
  auto result = engine.Run(R"(
    for $r in collection("/sensors")("root")()("results")()
    let $datetime := dateTime(data($r("date")))
    where year-from-dateTime($datetime) ge 2003
      and month-from-dateTime($datetime) eq 12
      and day-from-dateTime($datetime) eq 25
    return $r)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Every result is a measurement on a December 25th, 2003+.
  for (const Item& r : result->items) {
    const std::string& date = r.GetField("date")->string_value();
    EXPECT_GE(date.substr(0, 4), "2003");
    EXPECT_EQ(date.substr(4, 4), "1225");
  }
}

// Degraded scans end-to-end: one corrupt line in an NDJSON collection
// fails the whole query under the strict default, but is skipped and
// counted under ParseErrorPolicy::kSkipAndCount.
TEST(EngineTest, DegradedScanSkipsCorruptNdjsonLines) {
  auto make_engine = [](ParseErrorPolicy policy) {
    EngineOptions options;
    options.exec.on_parse_error = policy;
    Engine engine(options);
    Collection c;
    c.files.push_back(JsonFile::FromText(
        "{\"v\": 1}\n{\"v\": 2}\n{corrupt line\n{\"v\": 4}\n"));
    c.files.push_back(JsonFile::FromText("{\"v\": 5}\nalso corrupt\n"));
    engine.catalog()->RegisterCollection("/dirty", std::move(c));
    return engine;
  };
  const char* query =
      R"(for $d in collection("/dirty") return $d("v"))";

  Engine strict = make_engine(ParseErrorPolicy::kFail);
  auto failed = strict.Run(query);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kParseError);

  Engine lenient = make_engine(ParseErrorPolicy::kSkipAndCount);
  auto out = lenient.Run(query);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 4u);
  EXPECT_EQ(out->items[0], Item::Int64(1));
  EXPECT_EQ(out->items[3], Item::Int64(5));
  EXPECT_EQ(out->stats.skipped_records, 2u);
}

TEST(EngineTest, CleanScanReportsZeroSkippedRecords) {
  Engine engine = MakeBookstoreEngine();
  auto out = engine.Run(R"(collection("/books")("bookstore")("book")())");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->stats.skipped_records, 0u);
}

TEST(EngineTest, ExecutionStatsArePopulated) {
  Engine engine = MakeBookstoreEngine();
  auto result = engine.Run(R"(collection("/books")("bookstore")("book")())");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.bytes_scanned, 0u);
  EXPECT_EQ(result->stats.result_rows, 3u);
  EXPECT_GT(result->stats.real_ms, 0.0);
  EXPECT_FALSE(result->stats.stages.empty());
}

}  // namespace
}  // namespace jpar
