#include "jsoniq/parser.h"

#include <gtest/gtest.h>

namespace jpar {
namespace {

AstPtr Parse(std::string_view q) {
  auto ast = ParseQuery(q);
  EXPECT_TRUE(ast.ok()) << q << " -> " << ast.status().ToString();
  return ast.ok() ? *ast : nullptr;
}

TEST(JsoniqParserTest, Literals) {
  EXPECT_EQ(Parse("42")->literal, Item::Int64(42));
  EXPECT_EQ(Parse("2.5")->literal, Item::Double(2.5));
  EXPECT_EQ(Parse("\"hi\"")->literal, Item::String("hi"));
  EXPECT_EQ(Parse("true")->literal, Item::Boolean(true));
  EXPECT_EQ(Parse("null")->literal, Item::Null());
}

TEST(JsoniqParserTest, NegativeLiteralIsUnaryMinus) {
  AstPtr ast = Parse("-5");
  ASSERT_EQ(ast->kind, AstNode::Kind::kUnaryMinus);
  EXPECT_EQ(ast->args[0]->literal, Item::Int64(5));
}

TEST(JsoniqParserTest, FunctionCallsAndDynCalls) {
  AstPtr ast = Parse(R"(collection("/books")("bookstore")("book")())");
  // Outermost: keys-or-members dyncall (1 arg).
  ASSERT_EQ(ast->kind, AstNode::Kind::kDynCall);
  ASSERT_EQ(ast->args.size(), 1u);
  // Next: ("book") value step.
  const AstPtr& book = ast->args[0];
  ASSERT_EQ(book->kind, AstNode::Kind::kDynCall);
  ASSERT_EQ(book->args.size(), 2u);
  EXPECT_EQ(book->args[1]->literal, Item::String("book"));
  // Base: collection("/books") function call.
  const AstPtr& base = book->args[0]->args[0];
  ASSERT_EQ(base->kind, AstNode::Kind::kFunctionCall);
  EXPECT_EQ(base->name, "collection");
}

TEST(JsoniqParserTest, OperatorPrecedence) {
  // a + b * c parses as a + (b * c)
  AstPtr ast = Parse("1 + 2 * 3");
  ASSERT_EQ(ast->kind, AstNode::Kind::kBinaryOp);
  EXPECT_EQ(ast->name, "add");
  EXPECT_EQ(ast->args[1]->name, "mul");

  // comparison binds looser than arithmetic
  ast = Parse("1 + 2 eq 3");
  EXPECT_EQ(ast->name, "eq");
  EXPECT_EQ(ast->args[0]->name, "add");

  // and/or lowest; or looser than and
  ast = Parse("1 eq 1 and 2 eq 2 or 3 eq 3");
  EXPECT_EQ(ast->name, "or");
  EXPECT_EQ(ast->args[0]->name, "and");
}

TEST(JsoniqParserTest, SymbolicComparators) {
  EXPECT_EQ(Parse("1 = 2")->name, "eq");
  EXPECT_EQ(Parse("1 != 2")->name, "ne");
  EXPECT_EQ(Parse("1 < 2")->name, "lt");
  EXPECT_EQ(Parse("1 <= 2")->name, "le");
  EXPECT_EQ(Parse("1 > 2")->name, "gt");
  EXPECT_EQ(Parse("1 >= 2")->name, "ge");
}

TEST(JsoniqParserTest, DivAndMod) {
  EXPECT_EQ(Parse("6 div 2")->name, "div");
  EXPECT_EQ(Parse("6 mod 4")->name, "mod");
}

TEST(JsoniqParserTest, FlworClauses) {
  AstPtr ast = Parse(R"(
    for $x in collection("/c"), $y in $x("list")()
    let $v := $y("value")
    where $v gt 3
    group by $k := $y("key")
    return count($x("t")))");
  ASSERT_EQ(ast->kind, AstNode::Kind::kFlwor);
  ASSERT_EQ(ast->clauses.size(), 4u);
  EXPECT_EQ(ast->clauses[0].type, FlworClause::Type::kFor);
  EXPECT_EQ(ast->clauses[0].bindings.size(), 2u);
  EXPECT_EQ(ast->clauses[0].bindings[0].first, "x");
  EXPECT_EQ(ast->clauses[1].type, FlworClause::Type::kLet);
  EXPECT_EQ(ast->clauses[2].type, FlworClause::Type::kWhere);
  EXPECT_EQ(ast->clauses[3].type, FlworClause::Type::kGroupBy);
  EXPECT_EQ(ast->clauses[3].bindings[0].first, "k");
  ASSERT_NE(ast->return_expr, nullptr);
}

TEST(JsoniqParserTest, InterleavedForAndLet) {
  AstPtr ast = Parse(R"(
    for $x in collection("/c")
    let $a := $x("a")
    for $y in $x("list")()
    return $y)");
  ASSERT_EQ(ast->clauses.size(), 3u);
  EXPECT_EQ(ast->clauses[0].type, FlworClause::Type::kFor);
  EXPECT_EQ(ast->clauses[1].type, FlworClause::Type::kLet);
  EXPECT_EQ(ast->clauses[2].type, FlworClause::Type::kFor);
}

TEST(JsoniqParserTest, NestedFlworInsideFunction) {
  AstPtr ast = Parse(R"(count(for $j in $x return $j("title")))");
  ASSERT_EQ(ast->kind, AstNode::Kind::kFunctionCall);
  EXPECT_EQ(ast->name, "count");
  ASSERT_EQ(ast->args[0]->kind, AstNode::Kind::kFlwor);
}

TEST(JsoniqParserTest, Constructors) {
  AstPtr arr = Parse("[1, 2, 3]");
  ASSERT_EQ(arr->kind, AstNode::Kind::kArrayCtor);
  EXPECT_EQ(arr->args.size(), 3u);
  AstPtr empty = Parse("[]");
  EXPECT_TRUE(empty->args.empty());
  AstPtr obj = Parse(R"({"a": 1, "b": [2]})");
  ASSERT_EQ(obj->kind, AstNode::Kind::kObjectCtor);
  EXPECT_EQ(obj->args.size(), 4u);  // alternating key, value
}

TEST(JsoniqParserTest, ParenthesesGroup) {
  AstPtr ast = Parse("(1 + 2) * 3");
  EXPECT_EQ(ast->name, "mul");
  EXPECT_EQ(ast->args[0]->name, "add");
}

TEST(JsoniqParserTest, AllPaperQueriesParse) {
  const char* queries[] = {
      R"(json-doc("books.json")("bookstore")("book")())",
      R"(collection("/books")("bookstore")("book")())",
      R"(for $x in collection("/books")("bookstore")("book")()
         group by $author := $x("author") return count($x("title")))",
      R"(for $x in collection("/books")("bookstore")("book")()
         group by $author := $x("author")
         return count(for $j in $x return $j("title")))",
      R"(for $r in collection("/sensors")("root")()("results")()
         let $datetime := dateTime(data($r("date")))
         where year-from-dateTime($datetime) ge 2003
           and month-from-dateTime($datetime) eq 12
           and day-from-dateTime($datetime) eq 25
         return $r)",
      R"(avg(for $r_min in collection("/sensors")("root")()("results")()
             for $r_max in collection("/sensors")("root")()("results")()
             where $r_min("station") eq $r_max("station")
               and $r_min("date") eq $r_max("date")
               and $r_min("dataType") eq "TMIN"
               and $r_max("dataType") eq "TMAX"
             return $r_max("value") - $r_min("value")) div 10)",
  };
  for (const char* q : queries) {
    EXPECT_TRUE(ParseQuery(q).ok()) << q;
  }
}

TEST(JsoniqParserTest, SyntaxErrors) {
  const char* bad[] = {
      "",
      "for",
      "for $x return $x",          // missing 'in'
      "for $x in 1",               // missing return
      "let $x = 1 return $x",      // '=' is eq, not bind
      "group by $k := 1 return 1", // group-by without for
      "1 +",
      "count(",
      "[1, 2",
      R"({"a" 1})",
      "for $x in 1 return $x extra",
      "$",
  };
  for (const char* q : bad) {
    EXPECT_FALSE(ParseQuery(q).ok()) << "accepted: " << q;
  }
}

TEST(JsoniqParserTest, AstUsesVarSeesAllPositions) {
  AstPtr ast = Parse(R"(
    for $x in collection("/c")
    where $x("a") eq 1
    return count(for $j in $x return $j))");
  EXPECT_TRUE(AstUsesVar(ast, "x"));
  EXPECT_TRUE(AstUsesVar(ast, "j"));
  EXPECT_FALSE(AstUsesVar(ast, "z"));
}

}  // namespace
}  // namespace jpar
