// Direct physical-plan tests: PNode trees built by hand (no JSONiq
// frontend) run through the Executor against a small catalog.

#include "runtime/executor.h"

#include <gtest/gtest.h>

#include "json/binary_serde.h"
#include "json/parser.h"

namespace jpar {
namespace {

Catalog MakeCatalog() {
  Catalog catalog;
  Collection numbers;
  // Four files of measurement-like rows.
  numbers.files.push_back(JsonFile::FromText(
      R"({"rows": [{"k": "a", "v": 1}, {"k": "b", "v": 2}]})"));
  numbers.files.push_back(JsonFile::FromText(
      R"({"rows": [{"k": "a", "v": 3}]})"));
  numbers.files.push_back(JsonFile::FromText(
      R"({"rows": [{"k": "c", "v": 4}, {"k": "a", "v": 5}]})"));
  numbers.files.push_back(JsonFile::FromText(R"({"rows": []})"));
  catalog.RegisterCollection("numbers", std::move(numbers));
  return catalog;
}

std::shared_ptr<PNode> ScanRows() {
  auto scan = std::make_shared<PNode>();
  scan->kind = PNode::Kind::kPipeline;
  scan->scan.kind = ScanDesc::Kind::kDataScan;
  scan->scan.collection = "numbers";
  scan->scan.steps = {PathStep::Key("rows"), PathStep::KeysOrMembers()};
  return scan;
}

ScalarEvalPtr Field(int col, const char* key) {
  return *MakeFunctionEval(
      Builtin::kValue, {MakeColumnEval(col), MakeConstantEval(Item::String(key))});
}

TEST(ExecutorTest, EmptyTupleSourcePipeline) {
  Catalog catalog = MakeCatalog();
  auto ets = std::make_shared<PNode>();
  ets->kind = PNode::Kind::kPipeline;
  ets->scan.kind = ScanDesc::Kind::kEmptyTupleSource;
  ets->ops.push_back(UnaryOpDesc::Assign(MakeConstantEval(Item::Int64(7))));
  PhysicalPlan plan;
  plan.root = ets;
  plan.result_column = 0;
  Executor executor(&catalog, ExecOptions{});
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 1u);
  EXPECT_EQ(out->items[0], Item::Int64(7));
}

TEST(ExecutorTest, DataScanEmitsProjectedItems) {
  Catalog catalog = MakeCatalog();
  PhysicalPlan plan;
  plan.root = ScanRows();
  plan.result_column = 0;
  for (int partitions : {1, 2, 4, 7}) {
    ExecOptions options;
    options.partitions = partitions;
    Executor executor(&catalog, options);
    auto out = executor.Run(plan);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->items.size(), 5u) << partitions;
    EXPECT_GT(out->stats.bytes_scanned, 0u);
  }
}

TEST(ExecutorTest, ScanOverBinaryItemsSkipsParsing) {
  Catalog catalog;
  Collection binary;
  Item doc = *ParseJson(R"({"rows": [{"k": "z", "v": 10}]})");
  binary.files.push_back(JsonFile::FromBinaryItem(SerializeItem(doc)));
  catalog.RegisterCollection("numbers", std::move(binary));
  PhysicalPlan plan;
  plan.root = ScanRows();
  plan.result_column = 0;
  Executor executor(&catalog, ExecOptions{});
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 1u);
  EXPECT_EQ(*out->items[0].GetField("v"), Item::Int64(10));
}

TEST(ExecutorTest, GroupByCountsPerKey) {
  Catalog catalog = MakeCatalog();
  for (bool two_step : {false, true}) {
    auto groupby = std::make_shared<PNode>();
    groupby->kind = PNode::Kind::kGroupBy;
    groupby->input = ScanRows();
    groupby->keys.push_back(Field(0, "k"));
    AggSpec count;
    count.kind = AggKind::kCount;
    count.arg = Field(0, "v");
    groupby->aggs.push_back(count);
    groupby->two_step = two_step;

    PhysicalPlan plan;
    plan.root = groupby;
    plan.result_column = 1;  // the count
    ExecOptions options;
    options.partitions = 3;
    Executor executor(&catalog, options);
    auto out = executor.Run(plan);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    // keys: a->3, b->1, c->1
    std::multiset<int64_t> counts;
    for (const Item& i : out->items) counts.insert(i.int64_value());
    EXPECT_EQ(counts, (std::multiset<int64_t>{1, 1, 3})) << two_step;
  }
}

TEST(ExecutorTest, GroupByMaterializingSequences) {
  // Pre-rewrite semantics: AGGREGATE sequence materializes groups.
  Catalog catalog = MakeCatalog();
  auto groupby = std::make_shared<PNode>();
  groupby->kind = PNode::Kind::kGroupBy;
  groupby->input = ScanRows();
  groupby->keys.push_back(Field(0, "k"));
  AggSpec seq;
  seq.kind = AggKind::kSequence;
  seq.arg = MakeColumnEval(0);
  groupby->aggs.push_back(seq);
  groupby->two_step = true;  // must be ignored for sequence aggs

  PhysicalPlan plan;
  plan.root = groupby;
  plan.result_column = 1;
  Executor executor(&catalog, ExecOptions{});
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 3u);
  size_t total = 0;
  for (const Item& i : out->items) total += i.SequenceLength();
  EXPECT_EQ(total, 5u);
  // Materialized group state shows up in peak memory.
  EXPECT_GT(out->stats.peak_retained_bytes, 0u);
}

TEST(ExecutorTest, ZeroKeyGroupByIsGlobalAggregate) {
  Catalog catalog = MakeCatalog();
  auto agg = std::make_shared<PNode>();
  agg->kind = PNode::Kind::kGroupBy;
  agg->input = ScanRows();
  AggSpec sum;
  sum.kind = AggKind::kSum;
  sum.arg = Field(0, "v");
  agg->aggs.push_back(sum);
  agg->two_step = true;

  PhysicalPlan plan;
  plan.root = agg;
  plan.result_column = 0;
  ExecOptions options;
  options.partitions = 4;
  Executor executor(&catalog, options);
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 1u);
  EXPECT_EQ(out->items[0], Item::Int64(15));
}

TEST(ExecutorTest, HashJoinMatchesKeys) {
  Catalog catalog = MakeCatalog();
  auto join = std::make_shared<PNode>();
  join->kind = PNode::Kind::kJoin;
  join->left = ScanRows();
  join->right = ScanRows();
  join->left_keys.push_back(Field(0, "k"));
  join->right_keys.push_back(Field(0, "k"));

  // Count join pairs per key: a:3x3, b:1x1, c:1x1 => 11 pairs.
  auto pipeline = std::make_shared<PNode>();
  pipeline->kind = PNode::Kind::kPipeline;
  pipeline->input = join;
  PhysicalPlan plan;
  plan.root = pipeline;
  plan.result_column = 0;
  ExecOptions options;
  options.partitions = 3;
  Executor executor(&catalog, options);
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->items.size(), 11u);
}

TEST(ExecutorTest, JoinResidualFilters) {
  Catalog catalog = MakeCatalog();
  auto join = std::make_shared<PNode>();
  join->kind = PNode::Kind::kJoin;
  join->left = ScanRows();
  join->right = ScanRows();
  join->left_keys.push_back(Field(0, "k"));
  join->right_keys.push_back(Field(0, "k"));
  // Residual: left.v < right.v (strictly increasing pairs).
  join->residual = *MakeFunctionEval(
      Builtin::kLt, {Field(0, "v"), Field(1, "v")});

  PhysicalPlan plan;
  plan.root = join;
  plan.result_column = 0;
  Executor executor(&catalog, ExecOptions{});
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // key a values {1,3,5}: ordered pairs (1,3),(1,5),(3,5) => 3 pairs.
  EXPECT_EQ(out->items.size(), 3u);
}

TEST(ExecutorTest, KeylessJoinIsCrossProduct) {
  Catalog catalog = MakeCatalog();
  auto join = std::make_shared<PNode>();
  join->kind = PNode::Kind::kJoin;
  join->left = ScanRows();
  join->right = ScanRows();
  PhysicalPlan plan;
  plan.root = join;
  plan.result_column = 0;
  Executor executor(&catalog, ExecOptions{});
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->items.size(), 25u);
}

TEST(ExecutorTest, MakespanAndStagesPopulated) {
  Catalog catalog = MakeCatalog();
  auto groupby = std::make_shared<PNode>();
  groupby->kind = PNode::Kind::kGroupBy;
  groupby->input = ScanRows();
  groupby->keys.push_back(Field(0, "k"));
  AggSpec count;
  count.kind = AggKind::kCount;
  count.arg = MakeColumnEval(0);
  groupby->aggs.push_back(count);
  groupby->two_step = true;
  PhysicalPlan plan;
  plan.root = groupby;
  plan.result_column = 1;
  ExecOptions options;
  options.partitions = 4;
  Executor executor(&catalog, options);
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(out->stats.stages.size(), 3u);  // scan, local, global
  EXPECT_GT(out->stats.makespan_ms, 0.0);
  EXPECT_GT(out->stats.real_ms, 0.0);
  bool saw_exchange = false;
  for (const StageStats& s : out->stats.stages) {
    if (s.exchange_tuples > 0) saw_exchange = true;
  }
  EXPECT_TRUE(saw_exchange);
}

TEST(ExecutorTest, UnknownCollectionFails) {
  Catalog catalog;
  PhysicalPlan plan;
  plan.root = ScanRows();
  plan.result_column = 0;
  Executor executor(&catalog, ExecOptions{});
  EXPECT_EQ(executor.Run(plan).status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, ResultColumnOutOfRangeFails) {
  Catalog catalog = MakeCatalog();
  PhysicalPlan plan;
  plan.root = ScanRows();
  plan.result_column = 9;
  Executor executor(&catalog, ExecOptions{});
  EXPECT_FALSE(executor.Run(plan).ok());
}

TEST(LptMakespanTest, SchedulesOntoCores) {
  // 4 equal tasks on 4 cores: one task per core.
  EXPECT_DOUBLE_EQ(LptMakespanMs({1, 1, 1, 1}, 4), 1.0);
  // 8 equal tasks on 4 cores: two per core (the hyperthreading plateau).
  EXPECT_DOUBLE_EQ(LptMakespanMs({1, 1, 1, 1, 1, 1, 1, 1}, 4), 2.0);
  // Unbalanced tasks: the longest dominates.
  EXPECT_DOUBLE_EQ(LptMakespanMs({10, 1, 1, 1}, 4), 10.0);
  // Greedy LPT on {5,4,3,3,3} with 2 cores: 5|4 -> 5,3|4,3 -> 5,3|4,3,3
  // => busiest core 10 (optimal would be 9; LPT is a 4/3-approximation,
  // which is fine for a makespan model).
  EXPECT_DOUBLE_EQ(LptMakespanMs({5, 4, 3, 3, 3}, 2), 10.0);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(LptMakespanMs({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(LptMakespanMs({2.5}, 0), 2.5);
}

TEST(ValidateExecOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateExecOptions(ExecOptions()).ok());
}

TEST(ValidateExecOptionsTest, RejectsDegenerateParallelism) {
  ExecOptions o;
  o.partitions = 0;
  EXPECT_EQ(ValidateExecOptions(o).code(), StatusCode::kInvalidArgument);
  o = ExecOptions();
  o.partitions_per_node = 0;
  EXPECT_EQ(ValidateExecOptions(o).code(), StatusCode::kInvalidArgument);
  o = ExecOptions();
  o.cores_per_node = -1;
  EXPECT_EQ(ValidateExecOptions(o).code(), StatusCode::kInvalidArgument);
  o = ExecOptions();
  o.frame_bytes = 0;
  EXPECT_EQ(ValidateExecOptions(o).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateExecOptionsTest, RejectsNegativeDeadline) {
  ExecOptions o;
  o.deadline_ms = -1;
  Status st = ValidateExecOptions(o);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("deadline"), std::string::npos)
      << st.ToString();
  // Zero means "no deadline" and is fine.
  o.deadline_ms = 0;
  EXPECT_TRUE(ValidateExecOptions(o).ok());
}

TEST(ValidateExecOptionsTest, RejectsUnknownParseErrorPolicy) {
  ExecOptions o;
  o.on_parse_error = static_cast<ParseErrorPolicy>(99);
  Status st = ValidateExecOptions(o);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("on_parse_error"), std::string::npos)
      << st.ToString();
  // Both named policies pass.
  o.on_parse_error = ParseErrorPolicy::kFail;
  EXPECT_TRUE(ValidateExecOptions(o).ok());
  o.on_parse_error = ParseErrorPolicy::kSkipAndCount;
  EXPECT_TRUE(ValidateExecOptions(o).ok());
}

TEST(ValidateExecOptionsTest, ExecutorRunRejectsBadRobustnessKnobs) {
  // The validation is wired into Run, not just the service: a bare
  // executor with a negative deadline fails before touching the plan.
  Catalog catalog = MakeCatalog();
  ExecOptions o;
  o.deadline_ms = -5;
  Executor executor(&catalog, o);
  PhysicalPlan plan;
  plan.root = ScanRows();
  auto out = executor.Run(plan);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace jpar
