// Direct physical-plan tests: PNode trees built by hand (no JSONiq
// frontend) run through the Executor against a small catalog.

#include "runtime/executor.h"

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "json/binary_serde.h"
#include "json/parser.h"
#include "runtime/spill.h"

namespace jpar {
namespace {

Catalog MakeCatalog() {
  Catalog catalog;
  Collection numbers;
  // Four files of measurement-like rows.
  numbers.files.push_back(JsonFile::FromText(
      R"({"rows": [{"k": "a", "v": 1}, {"k": "b", "v": 2}]})"));
  numbers.files.push_back(JsonFile::FromText(
      R"({"rows": [{"k": "a", "v": 3}]})"));
  numbers.files.push_back(JsonFile::FromText(
      R"({"rows": [{"k": "c", "v": 4}, {"k": "a", "v": 5}]})"));
  numbers.files.push_back(JsonFile::FromText(R"({"rows": []})"));
  catalog.RegisterCollection("numbers", std::move(numbers));
  return catalog;
}

std::shared_ptr<PNode> ScanRows() {
  auto scan = std::make_shared<PNode>();
  scan->kind = PNode::Kind::kPipeline;
  scan->scan.kind = ScanDesc::Kind::kDataScan;
  scan->scan.collection = "numbers";
  scan->scan.steps = {PathStep::Key("rows"), PathStep::KeysOrMembers()};
  return scan;
}

ScalarEvalPtr Field(int col, const char* key) {
  return *MakeFunctionEval(
      Builtin::kValue, {MakeColumnEval(col), MakeConstantEval(Item::String(key))});
}

TEST(ExecutorTest, EmptyTupleSourcePipeline) {
  Catalog catalog = MakeCatalog();
  auto ets = std::make_shared<PNode>();
  ets->kind = PNode::Kind::kPipeline;
  ets->scan.kind = ScanDesc::Kind::kEmptyTupleSource;
  ets->ops.push_back(UnaryOpDesc::Assign(MakeConstantEval(Item::Int64(7))));
  PhysicalPlan plan;
  plan.root = ets;
  plan.result_column = 0;
  Executor executor(&catalog, ExecOptions{});
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 1u);
  EXPECT_EQ(out->items[0], Item::Int64(7));
}

TEST(ExecutorTest, DataScanEmitsProjectedItems) {
  Catalog catalog = MakeCatalog();
  PhysicalPlan plan;
  plan.root = ScanRows();
  plan.result_column = 0;
  for (int partitions : {1, 2, 4, 7}) {
    ExecOptions options;
    options.partitions = partitions;
    Executor executor(&catalog, options);
    auto out = executor.Run(plan);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->items.size(), 5u) << partitions;
    EXPECT_GT(out->stats.bytes_scanned, 0u);
  }
}

TEST(ExecutorTest, ScanOverBinaryItemsSkipsParsing) {
  Catalog catalog;
  Collection binary;
  Item doc = *ParseJson(R"({"rows": [{"k": "z", "v": 10}]})");
  binary.files.push_back(JsonFile::FromBinaryItem(SerializeItem(doc)));
  catalog.RegisterCollection("numbers", std::move(binary));
  PhysicalPlan plan;
  plan.root = ScanRows();
  plan.result_column = 0;
  Executor executor(&catalog, ExecOptions{});
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 1u);
  EXPECT_EQ(*out->items[0].GetField("v"), Item::Int64(10));
}

TEST(ExecutorTest, GroupByCountsPerKey) {
  Catalog catalog = MakeCatalog();
  for (bool two_step : {false, true}) {
    auto groupby = std::make_shared<PNode>();
    groupby->kind = PNode::Kind::kGroupBy;
    groupby->input = ScanRows();
    groupby->keys.push_back(Field(0, "k"));
    AggSpec count;
    count.kind = AggKind::kCount;
    count.arg = Field(0, "v");
    groupby->aggs.push_back(count);
    groupby->two_step = two_step;

    PhysicalPlan plan;
    plan.root = groupby;
    plan.result_column = 1;  // the count
    ExecOptions options;
    options.partitions = 3;
    Executor executor(&catalog, options);
    auto out = executor.Run(plan);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    // keys: a->3, b->1, c->1
    std::multiset<int64_t> counts;
    for (const Item& i : out->items) counts.insert(i.int64_value());
    EXPECT_EQ(counts, (std::multiset<int64_t>{1, 1, 3})) << two_step;
  }
}

TEST(ExecutorTest, GroupByMaterializingSequences) {
  // Pre-rewrite semantics: AGGREGATE sequence materializes groups.
  Catalog catalog = MakeCatalog();
  auto groupby = std::make_shared<PNode>();
  groupby->kind = PNode::Kind::kGroupBy;
  groupby->input = ScanRows();
  groupby->keys.push_back(Field(0, "k"));
  AggSpec seq;
  seq.kind = AggKind::kSequence;
  seq.arg = MakeColumnEval(0);
  groupby->aggs.push_back(seq);
  groupby->two_step = true;  // must be ignored for sequence aggs

  PhysicalPlan plan;
  plan.root = groupby;
  plan.result_column = 1;
  Executor executor(&catalog, ExecOptions{});
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 3u);
  size_t total = 0;
  for (const Item& i : out->items) total += i.SequenceLength();
  EXPECT_EQ(total, 5u);
  // Materialized group state shows up in peak memory.
  EXPECT_GT(out->stats.peak_retained_bytes, 0u);
}

TEST(ExecutorTest, ZeroKeyGroupByIsGlobalAggregate) {
  Catalog catalog = MakeCatalog();
  auto agg = std::make_shared<PNode>();
  agg->kind = PNode::Kind::kGroupBy;
  agg->input = ScanRows();
  AggSpec sum;
  sum.kind = AggKind::kSum;
  sum.arg = Field(0, "v");
  agg->aggs.push_back(sum);
  agg->two_step = true;

  PhysicalPlan plan;
  plan.root = agg;
  plan.result_column = 0;
  ExecOptions options;
  options.partitions = 4;
  Executor executor(&catalog, options);
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 1u);
  EXPECT_EQ(out->items[0], Item::Int64(15));
}

TEST(ExecutorTest, HashJoinMatchesKeys) {
  Catalog catalog = MakeCatalog();
  auto join = std::make_shared<PNode>();
  join->kind = PNode::Kind::kJoin;
  join->left = ScanRows();
  join->right = ScanRows();
  join->left_keys.push_back(Field(0, "k"));
  join->right_keys.push_back(Field(0, "k"));

  // Count join pairs per key: a:3x3, b:1x1, c:1x1 => 11 pairs.
  auto pipeline = std::make_shared<PNode>();
  pipeline->kind = PNode::Kind::kPipeline;
  pipeline->input = join;
  PhysicalPlan plan;
  plan.root = pipeline;
  plan.result_column = 0;
  ExecOptions options;
  options.partitions = 3;
  Executor executor(&catalog, options);
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->items.size(), 11u);
}

TEST(ExecutorTest, JoinResidualFilters) {
  Catalog catalog = MakeCatalog();
  auto join = std::make_shared<PNode>();
  join->kind = PNode::Kind::kJoin;
  join->left = ScanRows();
  join->right = ScanRows();
  join->left_keys.push_back(Field(0, "k"));
  join->right_keys.push_back(Field(0, "k"));
  // Residual: left.v < right.v (strictly increasing pairs).
  join->residual = *MakeFunctionEval(
      Builtin::kLt, {Field(0, "v"), Field(1, "v")});

  PhysicalPlan plan;
  plan.root = join;
  plan.result_column = 0;
  Executor executor(&catalog, ExecOptions{});
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // key a values {1,3,5}: ordered pairs (1,3),(1,5),(3,5) => 3 pairs.
  EXPECT_EQ(out->items.size(), 3u);
}

TEST(ExecutorTest, KeylessJoinIsCrossProduct) {
  Catalog catalog = MakeCatalog();
  auto join = std::make_shared<PNode>();
  join->kind = PNode::Kind::kJoin;
  join->left = ScanRows();
  join->right = ScanRows();
  PhysicalPlan plan;
  plan.root = join;
  plan.result_column = 0;
  Executor executor(&catalog, ExecOptions{});
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->items.size(), 25u);
}

TEST(ExecutorTest, MakespanAndStagesPopulated) {
  Catalog catalog = MakeCatalog();
  auto groupby = std::make_shared<PNode>();
  groupby->kind = PNode::Kind::kGroupBy;
  groupby->input = ScanRows();
  groupby->keys.push_back(Field(0, "k"));
  AggSpec count;
  count.kind = AggKind::kCount;
  count.arg = MakeColumnEval(0);
  groupby->aggs.push_back(count);
  groupby->two_step = true;
  PhysicalPlan plan;
  plan.root = groupby;
  plan.result_column = 1;
  ExecOptions options;
  options.partitions = 4;
  Executor executor(&catalog, options);
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(out->stats.stages.size(), 3u);  // scan, local, global
  EXPECT_GT(out->stats.makespan_ms, 0.0);
  EXPECT_GT(out->stats.real_ms, 0.0);
  bool saw_exchange = false;
  for (const StageStats& s : out->stats.stages) {
    if (s.exchange_tuples > 0) saw_exchange = true;
  }
  EXPECT_TRUE(saw_exchange);
}

TEST(ExecutorTest, UnknownCollectionFails) {
  Catalog catalog;
  PhysicalPlan plan;
  plan.root = ScanRows();
  plan.result_column = 0;
  Executor executor(&catalog, ExecOptions{});
  EXPECT_EQ(executor.Run(plan).status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, ResultColumnOutOfRangeFails) {
  Catalog catalog = MakeCatalog();
  PhysicalPlan plan;
  plan.root = ScanRows();
  plan.result_column = 9;
  Executor executor(&catalog, ExecOptions{});
  EXPECT_FALSE(executor.Run(plan).ok());
}

TEST(LptMakespanTest, SchedulesOntoCores) {
  // 4 equal tasks on 4 cores: one task per core.
  EXPECT_DOUBLE_EQ(LptMakespanMs({1, 1, 1, 1}, 4), 1.0);
  // 8 equal tasks on 4 cores: two per core (the hyperthreading plateau).
  EXPECT_DOUBLE_EQ(LptMakespanMs({1, 1, 1, 1, 1, 1, 1, 1}, 4), 2.0);
  // Unbalanced tasks: the longest dominates.
  EXPECT_DOUBLE_EQ(LptMakespanMs({10, 1, 1, 1}, 4), 10.0);
  // Greedy LPT on {5,4,3,3,3} with 2 cores: 5|4 -> 5,3|4,3 -> 5,3|4,3,3
  // => busiest core 10 (optimal would be 9; LPT is a 4/3-approximation,
  // which is fine for a makespan model).
  EXPECT_DOUBLE_EQ(LptMakespanMs({5, 4, 3, 3, 3}, 2), 10.0);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(LptMakespanMs({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(LptMakespanMs({2.5}, 0), 2.5);
}

TEST(ValidateExecOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateExecOptions(ExecOptions()).ok());
}

TEST(ValidateExecOptionsTest, RejectsDegenerateParallelism) {
  ExecOptions o;
  o.partitions = 0;
  EXPECT_EQ(ValidateExecOptions(o).code(), StatusCode::kInvalidArgument);
  o = ExecOptions();
  o.partitions_per_node = 0;
  EXPECT_EQ(ValidateExecOptions(o).code(), StatusCode::kInvalidArgument);
  o = ExecOptions();
  o.cores_per_node = -1;
  EXPECT_EQ(ValidateExecOptions(o).code(), StatusCode::kInvalidArgument);
  o = ExecOptions();
  o.frame_bytes = 0;
  EXPECT_EQ(ValidateExecOptions(o).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateExecOptionsTest, RejectsNegativeDeadline) {
  ExecOptions o;
  o.deadline_ms = -1;
  Status st = ValidateExecOptions(o);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("deadline"), std::string::npos)
      << st.ToString();
  // Zero means "no deadline" and is fine.
  o.deadline_ms = 0;
  EXPECT_TRUE(ValidateExecOptions(o).ok());
}

TEST(ValidateExecOptionsTest, RejectsUnknownExprMode) {
  ExecOptions o;
  o.expr_mode = static_cast<ExprMode>(7);
  Status st = ValidateExecOptions(o);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("expr_mode"), std::string::npos)
      << st.ToString();
  // All three named modes pass.
  for (ExprMode mode :
       {ExprMode::kAuto, ExprMode::kTree, ExprMode::kBytecode}) {
    o.expr_mode = mode;
    EXPECT_TRUE(ValidateExecOptions(o).ok());
  }
}

TEST(ValidateExecOptionsTest, RejectsBatchSizeOutOfRange) {
  ExecOptions o;
  o.batch_size = 0;
  Status st = ValidateExecOptions(o);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("batch_size"), std::string::npos)
      << st.ToString();
  o.batch_size = 65537;
  EXPECT_EQ(ValidateExecOptions(o).code(), StatusCode::kInvalidArgument);
  // Any batch size in range keeps the every-256-tuples cancellation
  // guarantee: the batch evaluator ticks its check hook per lane batch
  // internally, so even batch_size = 65536 is admissible.
  for (size_t bs : {1u, 256u, 1024u, 65536u}) {
    o.batch_size = bs;
    EXPECT_TRUE(ValidateExecOptions(o).ok()) << bs;
  }
}

TEST(ValidateExecOptionsTest, RejectsUnknownParseErrorPolicy) {
  ExecOptions o;
  o.on_parse_error = static_cast<ParseErrorPolicy>(99);
  Status st = ValidateExecOptions(o);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("on_parse_error"), std::string::npos)
      << st.ToString();
  // Both named policies pass.
  o.on_parse_error = ParseErrorPolicy::kFail;
  EXPECT_TRUE(ValidateExecOptions(o).ok());
  o.on_parse_error = ParseErrorPolicy::kSkipAndCount;
  EXPECT_TRUE(ValidateExecOptions(o).ok());
}

// ---- Morsel-driven scans (DESIGN.md §9) -----------------------------

/// NDJSON collection: `files` files of `records` one-line documents
/// {"v": id, "pad": "..."} each. With dirty=true every 7th record is an
/// unterminated string, exercising degraded scans and index poisoning.
Catalog MakeNdjsonCatalog(int files, int records, bool dirty) {
  Catalog catalog;
  Collection c;
  int id = 0;
  for (int f = 0; f < files; ++f) {
    std::string text;
    for (int r = 0; r < records; ++r, ++id) {
      if (dirty && r % 7 == 3) {
        text += "{\"v\":\"unterminated\n";
      } else {
        text += "{\"v\":" + std::to_string(id) +
                ",\"pad\":\"xxxxxxxxxxxxxxxx\"}\n";
      }
    }
    c.files.push_back(JsonFile::FromText(std::move(text)));
  }
  catalog.RegisterCollection("nd", std::move(c));
  return catalog;
}

std::shared_ptr<PNode> ScanNd() {
  auto scan = std::make_shared<PNode>();
  scan->kind = PNode::Kind::kPipeline;
  scan->scan.kind = ScanDesc::Kind::kDataScan;
  scan->scan.collection = "nd";
  scan->scan.steps = {PathStep::Key("v")};
  return scan;
}

TEST(ExecutorTest, MorselScanMatchesSequentialOnNdjson) {
  Catalog catalog = MakeNdjsonCatalog(3, 40, false);
  PhysicalPlan plan;
  plan.root = ScanNd();
  plan.result_column = 0;
  for (int partitions : {1, 2, 4}) {
    ExecOptions seq;
    seq.partitions = partitions;
    Executor sequential(&catalog, seq);
    auto want = sequential.Run(plan);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_EQ(want->items.size(), 120u);
    EXPECT_EQ(want->stats.morsels_scanned, 0u);

    ExecOptions opt = seq;
    opt.use_threads = true;
    opt.morsel_bytes = 64;  // force many morsels per file
    Executor morsel(&catalog, opt);
    auto got = morsel.Run(plan);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    // Same items in the same order, and the same scan statistics.
    EXPECT_EQ(got->items, want->items) << partitions;
    EXPECT_EQ(got->stats.bytes_scanned, want->stats.bytes_scanned);
    EXPECT_EQ(got->stats.items_scanned, want->stats.items_scanned);
    // Each file is bigger than one morsel, so files really split.
    EXPECT_GT(got->stats.morsels_scanned, 3u);
  }
}

TEST(ExecutorTest, MorselDegradedScanCountsMatchSequential) {
  Catalog catalog = MakeNdjsonCatalog(3, 40, true);
  PhysicalPlan plan;
  plan.root = ScanNd();
  plan.result_column = 0;
  for (int partitions : {1, 3}) {
    ExecOptions seq;
    seq.partitions = partitions;
    seq.on_parse_error = ParseErrorPolicy::kSkipAndCount;
    Executor sequential(&catalog, seq);
    auto want = sequential.Run(plan);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_GT(want->stats.skipped_records, 0u);

    ExecOptions opt = seq;
    opt.use_threads = true;
    opt.morsel_bytes = 96;
    Executor morsel(&catalog, opt);
    auto got = morsel.Run(plan);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->items, want->items) << partitions;
    EXPECT_EQ(got->stats.skipped_records, want->stats.skipped_records);
  }
}

TEST(ExecutorTest, MorselStrictFallbackOnMultiLineDocuments) {
  // Pretty-printed documents have newlines inside records, so every
  // newline-aligned split lands mid-document. The threaded scan must
  // detect the morsel parse failures and fall back to whole-file scans
  // with results identical to the sequential path.
  Catalog catalog;
  Collection c;
  std::string text;
  for (int i = 0; i < 30; ++i) {
    text += "{\n  \"v\": " + std::to_string(i) + ",\n  \"w\": [1,\n 2]\n}\n";
  }
  c.files.push_back(JsonFile::FromText(std::move(text)));
  catalog.RegisterCollection("nd", std::move(c));
  PhysicalPlan plan;
  plan.root = ScanNd();
  plan.result_column = 0;

  ExecOptions seq;
  Executor sequential(&catalog, seq);
  auto want = sequential.Run(plan);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  ASSERT_EQ(want->items.size(), 30u);

  ExecOptions opt;
  opt.partitions = 2;
  opt.use_threads = true;
  opt.morsel_bytes = 32;
  Executor morsel(&catalog, opt);
  auto got = morsel.Run(plan);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->items, want->items);
}

TEST(ExecutorTest, MorselScanHandlesBinaryFiles) {
  Catalog catalog;
  Collection binary;
  for (int i = 0; i < 3; ++i) {
    Item doc = *ParseJson("{\"v\": " + std::to_string(i) + "}");
    binary.files.push_back(JsonFile::FromBinaryItem(SerializeItem(doc)));
  }
  catalog.RegisterCollection("nd", std::move(binary));
  PhysicalPlan plan;
  plan.root = ScanNd();
  plan.result_column = 0;
  ExecOptions opt;
  opt.partitions = 2;
  opt.use_threads = true;
  Executor executor(&catalog, opt);
  auto out = executor.Run(plan);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 3u);
  EXPECT_EQ(out->stats.morsels_scanned, 3u);
}

TEST(ExecutorTest, ScanModesAgreeThroughExecutor) {
  Catalog catalog = MakeNdjsonCatalog(2, 30, false);
  PhysicalPlan plan;
  plan.root = ScanNd();
  plan.result_column = 0;
  for (bool threads : {false, true}) {
    ExecOptions indexed;
    indexed.partitions = 2;
    indexed.use_threads = threads;
    indexed.morsel_bytes = 128;
    ExecOptions scalar = indexed;
    scalar.scan_mode = ScanMode::kScalar;
    auto want = Executor(&catalog, scalar).Run(plan);
    auto got = Executor(&catalog, indexed).Run(plan);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->items, want->items) << threads;
    EXPECT_EQ(got->stats.bytes_scanned, want->stats.bytes_scanned);
  }
}

TEST(ExecutorTest, MorselScanRespectsCancellation) {
  Catalog catalog = MakeNdjsonCatalog(2, 50, false);
  PhysicalPlan plan;
  plan.root = ScanNd();
  plan.result_column = 0;
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  QueryContext ctx;
  ctx.set_cancellation(token);
  ExecOptions opt;
  opt.partitions = 2;
  opt.use_threads = true;
  opt.morsel_bytes = 64;
  Executor executor(&catalog, opt, &ctx);
  auto out = executor.Run(plan);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
}

TEST(ExecutorTest, MorselScanSurfacesIOFault) {
  Catalog catalog = MakeNdjsonCatalog(3, 20, false);
  PhysicalPlan plan;
  plan.root = ScanNd();
  plan.result_column = 0;
  FaultInjector faults;
  faults.ArmAfter(FaultInjector::kScanIOError, 2,
                  Status::IOError("injected disk error"));
  QueryContext ctx;
  ctx.set_fault_injector(&faults);
  ExecOptions opt;
  opt.partitions = 2;
  opt.use_threads = true;
  opt.morsel_bytes = 64;
  Executor executor(&catalog, opt, &ctx);
  auto out = executor.Run(plan);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kIOError);
}

// Run under TSan in CI: many workers hammering the per-morsel slots,
// the shared task queue, and the atomic memory tracker, with totals
// checked so a lost update shows up even without the sanitizer.
TEST(ExecutorTest, MorselStatsMergeUnderThreads) {
  Catalog catalog = MakeNdjsonCatalog(4, 100, false);
  PhysicalPlan plan;
  plan.root = ScanNd();
  plan.result_column = 0;
  ExecOptions seq;
  seq.partitions = 4;
  auto want = Executor(&catalog, seq).Run(plan);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  for (int round = 0; round < 3; ++round) {
    ExecOptions opt = seq;
    opt.use_threads = true;
    opt.morsel_bytes = 128;
    auto got = Executor(&catalog, opt).Run(plan);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->items.size(), 400u);
    EXPECT_EQ(got->items, want->items);
    EXPECT_EQ(got->stats.bytes_scanned, want->stats.bytes_scanned);
    EXPECT_EQ(got->stats.items_scanned, want->stats.items_scanned);
  }
}

TEST(ValidateExecOptionsTest, RejectsUnknownScanMode) {
  ExecOptions o;
  o.scan_mode = static_cast<ScanMode>(9);
  Status st = ValidateExecOptions(o);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("scan_mode"), std::string::npos)
      << st.ToString();
  o.scan_mode = ScanMode::kScalar;
  EXPECT_TRUE(ValidateExecOptions(o).ok());
  o.scan_mode = ScanMode::kIndexed;
  EXPECT_TRUE(ValidateExecOptions(o).ok());
}

TEST(ValidateExecOptionsTest, RejectsBadSpillKnobs) {
  ExecOptions o;
  o.spill = static_cast<SpillMode>(7);
  Status st = ValidateExecOptions(o);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("spill"), std::string::npos) << st.ToString();

  // Spill knobs only matter once spilling is enabled: a disabled config
  // with nonsense fan-out still validates (it is never consulted).
  o = ExecOptions();
  o.spill_fanout = -3;
  EXPECT_TRUE(ValidateExecOptions(o).ok());

  o.spill = SpillMode::kEnabled;
  st = ValidateExecOptions(o);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("spill_fanout"), std::string::npos)
      << st.ToString();
  o.spill_fanout = 1;  // a fan-out below 2 cannot shrink a bucket
  EXPECT_EQ(ValidateExecOptions(o).code(), StatusCode::kInvalidArgument);
  o.spill_fanout = 2;
  EXPECT_TRUE(ValidateExecOptions(o).ok()) << ValidateExecOptions(o).ToString();

  // A spill_dir that does not exist (or is not a directory — a regular
  // file here, since permission bits are invisible to root) is rejected
  // up front rather than at first flush.
  o.spill_dir = "/nonexistent/jpar/spill";
  EXPECT_EQ(ValidateExecOptions(o).code(), StatusCode::kInvalidArgument);
  std::string file_path = ::testing::TempDir() + "/jpar_spill_dir_file";
  { std::ofstream(file_path) << "x"; }
  o.spill_dir = file_path;
  EXPECT_EQ(ValidateExecOptions(o).code(), StatusCode::kInvalidArgument);
  std::remove(file_path.c_str());
  o.spill_dir = ::testing::TempDir();
  EXPECT_TRUE(ValidateExecOptions(o).ok()) << ValidateExecOptions(o).ToString();
}

TEST(SpillSweepTest, OrphanSweepRemovesOnlyDeadPidRunFiles) {
  std::string dir = ::testing::TempDir() + "/jpar_sweep_test";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  // A pid guaranteed dead and reaped: fork a child that exits at once.
  pid_t dead = fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) _exit(0);
  ASSERT_EQ(waitpid(dead, nullptr, 0), dead);

  auto touch = [&](const std::string& name) {
    std::ofstream(dir + "/" + name) << "x";
  };
  const std::string orphan =
      "jpar-spill-" + std::to_string(dead) + "-deadbeef-0.run";
  const std::string live =
      "jpar-spill-" + std::to_string(getpid()) + "-deadbeef-1.run";
  touch(orphan);                  // dead owner: swept
  touch(live);                    // live owner: kept
  touch("jpar-spill-x-bad.run");  // non-numeric pid: kept
  touch("unrelated.txt");         // not a spill run: kept

  EXPECT_EQ(SweepOrphanedSpillFiles(dir), 1);
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + orphan));
  EXPECT_TRUE(std::filesystem::exists(dir + "/" + live));
  EXPECT_TRUE(std::filesystem::exists(dir + "/jpar-spill-x-bad.run"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/unrelated.txt"));

  // Idempotent: a second sweep finds nothing left to reclaim.
  EXPECT_EQ(SweepOrphanedSpillFiles(dir), 0);
  std::filesystem::remove_all(dir);
}

TEST(ValidateExecOptionsTest, ExecutorRunRejectsBadRobustnessKnobs) {
  // The validation is wired into Run, not just the service: a bare
  // executor with a negative deadline fails before touching the plan.
  Catalog catalog = MakeCatalog();
  ExecOptions o;
  o.deadline_ms = -5;
  Executor executor(&catalog, o);
  PhysicalPlan plan;
  plan.root = ScanRows();
  auto out = executor.Run(plan);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace jpar
