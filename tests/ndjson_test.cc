// Multi-document collection files (NDJSON / concatenated JSON): every
// collection file is a document stream, through every read path —
// streaming DATASCAN, naive collection(), the loaded baselines — plus
// disk-backed files.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "baselines/asterix_like.h"
#include "baselines/memtable.h"
#include "core/engine.h"
#include "json/parser.h"

namespace jpar {
namespace {

constexpr const char* kNdjson =
    "{\"v\": 1, \"g\": \"a\"}\n"
    "{\"v\": 2, \"g\": \"b\"}\n"
    "{\"v\": 3, \"g\": \"a\"}\n";

TEST(NdjsonTest, ParseJsonStreamSplitsDocuments) {
  auto docs = ParseJsonStream(kNdjson);
  ASSERT_TRUE(docs.ok()) << docs.status().ToString();
  ASSERT_EQ(docs->size(), 3u);
  EXPECT_EQ(*(*docs)[2].GetField("v"), Item::Int64(3));
  // Concatenated without newlines works too.
  docs = ParseJsonStream("{\"a\":1}{\"a\":2}");
  ASSERT_TRUE(docs.ok());
  EXPECT_EQ(docs->size(), 2u);
  // Whitespace-only input: zero documents.
  docs = ParseJsonStream("  \n\t ");
  ASSERT_TRUE(docs.ok());
  EXPECT_TRUE(docs->empty());
  // A malformed second document is an error.
  EXPECT_FALSE(ParseJsonStream("{\"a\":1} {bad").ok());
}

TEST(NdjsonTest, EngineScansMultiDocumentFiles) {
  for (bool with_rules : {true, false}) {
    EngineOptions options;
    options.rules = with_rules ? RuleOptions::All() : RuleOptions::None();
    Engine engine(options);
    Collection c;
    c.files.push_back(JsonFile::FromText(kNdjson));
    c.files.push_back(JsonFile::FromText("{\"v\": 10, \"g\": \"b\"}"));
    engine.catalog()->RegisterCollection("/c", std::move(c));
    auto out = engine.Run(R"(
        for $d in collection("/c")
        where $d("g") eq "a"
        return $d("v"))");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    std::multiset<std::string> rows;
    for (const Item& i : out->items) rows.insert(i.ToJsonString());
    EXPECT_EQ(rows, (std::multiset<std::string>{"1", "3"}))
        << "rules=" << with_rules;
  }
}

TEST(NdjsonTest, BaselinesSplitDocumentsToo) {
  Collection c;
  c.files.push_back(JsonFile::FromText(kNdjson));

  MemTable table;
  auto stats = table.Load(c);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->documents, 3u);

  AsterixLikeOptions options;
  options.preload = true;
  AsterixLike asterix(options);
  auto load = asterix.Register("/c", c);
  ASSERT_TRUE(load.ok());
  EXPECT_EQ(load->documents, 3u);
  auto out = asterix.Run(R"(for $d in collection("/c") return $d("v"))");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->items.size(), 3u);
}

TEST(NdjsonTest, DiskBackedFilesWork) {
  std::string path = ::testing::TempDir() + "/jpar_ndjson_test.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << kNdjson;
  }
  Engine engine;
  Collection c;
  c.files.push_back(JsonFile::FromPath(path));
  engine.catalog()->RegisterCollection("/disk", std::move(c));
  auto out = engine.Run(R"(for $d in collection("/disk") return $d("v"))");
  std::remove(path.c_str());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->items.size(), 3u);
}

TEST(NdjsonTest, MissingDiskFileReportsIOError) {
  Engine engine;
  Collection c;
  c.files.push_back(JsonFile::FromPath("/nonexistent/nowhere.json"));
  engine.catalog()->RegisterCollection("/disk", std::move(c));
  auto out = engine.Run(R"(for $d in collection("/disk") return $d)");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kIOError);
}

TEST(NdjsonTest, MalformedFileFailsQueryCleanly) {
  Engine engine;
  Collection c;
  c.files.push_back(JsonFile::FromText("{\"ok\": 1}"));
  c.files.push_back(JsonFile::FromText("{\"broken\":"));
  engine.catalog()->RegisterCollection("/c", std::move(c));
  auto out = engine.Run(R"(for $d in collection("/c") return $d)");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace jpar
