// Tree-vs-bytecode differential suite (DESIGN.md §13).
//
// Part A generates random ScalarEval trees and checks that the batch
// bytecode interpreter produces exactly what the tuple-at-a-time tree
// interpreter produces, lane by lane: the same items (JSON-identical)
// and, for failing lanes, the same error code and message.
//
// Part B runs the paper queries end to end with ExprMode::kTree vs
// ExprMode::kBytecode across partitioning, threading, spilling, and
// batch-size configurations — rows must be byte-identical, skip counts
// must agree on dirty input, and injected runtime errors (division by
// zero, string+int) must surface with identical status text.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "bench/queries.h"
#include "core/engine.h"
#include "data/sensor_generator.h"
#include "runtime/expr_compile.h"
#include "runtime/expression.h"
#include "runtime/tuple_batch.h"

namespace jpar {
namespace {

// ---------------------------------------------------------------------
// Part A: randomized expression trees.
// ---------------------------------------------------------------------

struct FnSpec {
  Builtin fn;
  int arity;
};

// Every eager builtin the generator can produce with a fixed arity,
// plus the lazy connectives (compiled to sub-programs). kCollection /
// kJsonDoc need a catalog and are produced only by DATASCAN rewrites,
// never by ASSIGN/SELECT compilation — excluded.
constexpr FnSpec kFnTable[] = {
    {Builtin::kValue, 2},          {Builtin::kKeysOrMembers, 1},
    {Builtin::kData, 1},           {Builtin::kPromote, 1},
    {Builtin::kTreat, 1},          {Builtin::kDateTime, 1},
    {Builtin::kYearFromDateTime, 1}, {Builtin::kMonthFromDateTime, 1},
    {Builtin::kDayFromDateTime, 1},  {Builtin::kEq, 2},
    {Builtin::kNe, 2},             {Builtin::kLt, 2},
    {Builtin::kLe, 2},             {Builtin::kGt, 2},
    {Builtin::kGe, 2},             {Builtin::kAnd, 2},
    {Builtin::kOr, 2},             {Builtin::kNot, 1},
    {Builtin::kAdd, 2},            {Builtin::kSub, 2},
    {Builtin::kMul, 2},            {Builtin::kDiv, 2},
    {Builtin::kMod, 2},            {Builtin::kNeg, 1},
    {Builtin::kCount, 1},          {Builtin::kSum, 1},
    {Builtin::kAvg, 1},            {Builtin::kMin, 1},
    {Builtin::kMax, 1},            {Builtin::kConcat, 2},
    {Builtin::kSubstring, 3},      {Builtin::kStringLength, 1},
    {Builtin::kContains, 2},       {Builtin::kStartsWith, 2},
    {Builtin::kUpperCase, 1},      {Builtin::kLowerCase, 1},
    {Builtin::kStringFn, 1},       {Builtin::kAbs, 1},
    {Builtin::kRound, 1},          {Builtin::kFloor, 1},
    {Builtin::kCeiling, 1},        {Builtin::kEmpty, 1},
    {Builtin::kExists, 1},         {Builtin::kDistinctValues, 1},
    {Builtin::kBooleanFn, 1},      {Builtin::kArrayConstructor, 2},
};

class TreeGen {
 public:
  TreeGen(uint64_t seed, int width) : rng_(seed), width_(width) {}

  Item RandomScalar(int depth = 0) {
    switch (rng_() % (depth < 1 ? 9 : 7)) {
      case 0: return Item::Null();
      case 1: return Item::Boolean(rng_() % 2 == 0);
      case 2: return Item::Int64(static_cast<int64_t>(rng_() % 2000) - 1000);
      case 3: return Item::Double(static_cast<double>(rng_() % 1000) / 8.0);
      case 4: return Item::String("s" + std::to_string(rng_() % 30));
      case 5: return Item::String("2003-12-25");
      case 6: return Item::Int64(static_cast<int64_t>(rng_() % 3));
      case 7: {  // small array (value()/keys-or-members() fodder)
        Item::ItemVector elems;
        for (uint32_t i = 0, n = rng_() % 4; i < n; ++i) {
          elems.push_back(RandomScalar(depth + 1));
        }
        return Item::MakeArray(std::move(elems));
      }
      default: {  // small object
        Item::Object fields;
        for (uint32_t i = 0, n = rng_() % 3; i < n; ++i) {
          fields.push_back(
              {"k" + std::to_string(i), RandomScalar(depth + 1)});
        }
        return Item::MakeObject(std::move(fields));
      }
    }
  }

  ScalarEvalPtr RandomTree(int depth) {
    if (depth <= 0 || rng_() % 4 == 0) {
      // Leaves: constants and columns, occasionally out of range so the
      // two interpreters must agree on the error too.
      uint32_t pick = rng_() % 8;
      if (pick < 3) return MakeConstantEval(RandomScalar());
      if (pick == 7) return MakeColumnEval(width_ + 1);
      return MakeColumnEval(static_cast<int>(rng_() % width_));
    }
    const FnSpec& spec = kFnTable[rng_() % std::size(kFnTable)];
    std::vector<ScalarEvalPtr> args;
    for (int i = 0; i < spec.arity; ++i) {
      args.push_back(RandomTree(depth - 1));
    }
    auto made = MakeFunctionEval(spec.fn, std::move(args));
    if (!made.ok()) return MakeConstantEval(Item::Null());
    return *made;
  }

 private:
  std::mt19937 rng_;
  int width_;
};

TupleBatch RandomBatch(uint64_t seed, int width, size_t rows) {
  TreeGen gen(seed, width);
  TupleBatch batch(rows);
  batch.Reset(static_cast<size_t>(width));
  for (size_t r = 0; r < rows; ++r) {
    Tuple t;
    for (int c = 0; c < width; ++c) t.push_back(gen.RandomScalar());
    batch.AppendTuple(std::move(t));
  }
  return batch;
}

// One differential run: every lane of `sel` must agree between the two
// interpreters on value or on (code, message).
void CheckTreeVsBytecode(const ScalarEvalPtr& tree, const TupleBatch& batch,
                         const std::vector<uint32_t>& sel) {
  ExprProgramPtr prog = CompileExprProgram(tree);
  ASSERT_NE(prog, nullptr) << tree->ToString();

  EvalContext batch_ctx;
  std::vector<Item> out;
  std::vector<LaneError> errors;
  ASSERT_TRUE(EvalExprProgram(*prog, batch, sel, &batch_ctx, nullptr, &out,
                              &errors)
                  .ok());
  ASSERT_EQ(out.size(), sel.size());

  std::vector<const Status*> lane_error(sel.size(), nullptr);
  for (const LaneError& e : errors) {
    ASSERT_LT(e.lane, sel.size());
    if (lane_error[e.lane] == nullptr) lane_error[e.lane] = &e.status;
  }

  for (size_t lane = 0; lane < sel.size(); ++lane) {
    SCOPED_TRACE(tree->ToString() + " @lane " + std::to_string(lane));
    EvalContext tree_ctx;
    Tuple row = batch.MaterializeRow(sel[lane]);
    Result<Item> expected = tree->Eval(row, &tree_ctx);
    if (expected.ok()) {
      ASSERT_EQ(lane_error[lane], nullptr)
          << "bytecode errored where the tree succeeded: "
          << lane_error[lane]->ToString();
      EXPECT_EQ(out[lane].ToJsonString(), expected->ToJsonString());
      EXPECT_TRUE(out[lane].Equals(*expected));
    } else {
      ASSERT_NE(lane_error[lane], nullptr)
          << "tree errored (" << expected.status().ToString()
          << ") but bytecode produced " << out[lane].ToJsonString();
      EXPECT_EQ(lane_error[lane]->ToString(), expected.status().ToString());
    }
  }
}

TEST(ExprDifferentialTest, RandomTreesAgreeLaneByLane) {
  constexpr int kWidth = 3;
  constexpr size_t kRows = 48;
  for (uint64_t seed = 0; seed < 150; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    TreeGen gen(seed * 7919 + 1, kWidth);
    ScalarEvalPtr tree = gen.RandomTree(4);
    TupleBatch batch = RandomBatch(seed * 104729 + 3, kWidth, kRows);
    std::vector<uint32_t> all;
    for (uint32_t r = 0; r < kRows; ++r) all.push_back(r);
    CheckTreeVsBytecode(tree, batch, all);
    // A strided selection: deselected rows must be invisible.
    std::vector<uint32_t> odd;
    for (uint32_t r = 1; r < kRows; r += 2) odd.push_back(r);
    CheckTreeVsBytecode(tree, batch, odd);
  }
}

TEST(ExprDifferentialTest, FusedKernelShapesAgree) {
  // The shapes the peephole pass fuses (column-vs-constant compare,
  // arithmetic-vs-constant, value(x, const), and/or chains) deserve
  // direct coverage beyond what random trees happen to hit.
  auto fn = [](Builtin b, std::vector<ScalarEvalPtr> args) {
    auto made = MakeFunctionEval(b, std::move(args));
    EXPECT_TRUE(made.ok());
    return *made;
  };
  std::vector<ScalarEvalPtr> trees;
  trees.push_back(fn(Builtin::kGe, {MakeColumnEval(0),
                                    MakeConstantEval(Item::Int64(100))}));
  trees.push_back(fn(Builtin::kAdd, {MakeColumnEval(1),
                                     MakeConstantEval(Item::Int64(7))}));
  trees.push_back(fn(Builtin::kDiv, {MakeColumnEval(1),
                                     MakeConstantEval(Item::Int64(0))}));
  trees.push_back(fn(Builtin::kValue,
                     {MakeColumnEval(2), MakeConstantEval(Item::String("k0"))}));
  trees.push_back(fn(
      Builtin::kAnd,
      {fn(Builtin::kLt, {MakeColumnEval(0), MakeConstantEval(Item::Int64(0))}),
       fn(Builtin::kEq,
          {MakeColumnEval(1), MakeConstantEval(Item::String("s1"))})}));
  trees.push_back(fn(
      Builtin::kOr,
      {fn(Builtin::kGt, {MakeColumnEval(0), MakeConstantEval(Item::Int64(0))}),
       fn(Builtin::kAdd,
          {MakeColumnEval(1), MakeConstantEval(Item::Int64(1))})}));

  for (uint64_t seed = 0; seed < 20; ++seed) {
    TupleBatch batch = RandomBatch(seed + 500, 3, 64);
    std::vector<uint32_t> all;
    for (uint32_t r = 0; r < 64; ++r) all.push_back(r);
    for (const ScalarEvalPtr& tree : trees) {
      CheckTreeVsBytecode(tree, batch, all);
    }
  }
}

TEST(ExprDifferentialTest, CompileIsShapeDriven) {
  // Every maker-built tree is compilable; an opaque node anywhere makes
  // the whole program nullptr (stays on the tree interpreter).
  class OpaqueEval : public ScalarEval {
   public:
    Result<Item> Eval(const Tuple&, EvalContext*) const override {
      return Item::Null();
    }
    std::string ToString() const override { return "opaque()"; }
  };
  EXPECT_NE(CompileExprProgram(MakeConstantEval(Item::Int64(1))), nullptr);
  EXPECT_NE(CompileExprProgram(MakeColumnEval(0)), nullptr);
  EXPECT_EQ(CompileExprProgram(std::make_shared<OpaqueEval>()), nullptr);
  auto wrapped = MakeFunctionEval(
      Builtin::kNot, {std::make_shared<OpaqueEval>()});
  ASSERT_TRUE(wrapped.ok());
  EXPECT_EQ(CompileExprProgram(*wrapped), nullptr);
}

TEST(ExprDifferentialTest, EvalCheckHonorsCancellationInterval) {
  // A batch wider than the check interval must tick the hook; a firing
  // hook must abort the whole batch (not defer per-lane).
  auto tree = MakeFunctionEval(
      Builtin::kAdd, {MakeColumnEval(0), MakeConstantEval(Item::Int64(1))});
  ASSERT_TRUE(tree.ok());
  ExprProgramPtr prog = CompileExprProgram(*tree);
  ASSERT_NE(prog, nullptr);
  TupleBatch batch(1024);
  batch.Reset(1);
  for (int i = 0; i < 1024; ++i) batch.AppendRow(Item::Int64(i));
  std::vector<uint32_t> sel;
  for (uint32_t r = 0; r < 1024; ++r) sel.push_back(r);
  uint64_t ticks = 0;
  EvalCheck counting([&ticks]() {
    ++ticks;
    return Status::OK();
  });
  EvalContext ctx;
  std::vector<Item> out;
  std::vector<LaneError> errors;
  ASSERT_TRUE(
      EvalExprProgram(*prog, batch, sel, &ctx, &counting, &out, &errors)
          .ok());
  EXPECT_GE(ticks, 1024 / kExprCheckIntervalLanes);

  EvalCheck cancelling([]() { return Status::Cancelled("stop"); });
  Status st =
      EvalExprProgram(*prog, batch, sel, &ctx, &cancelling, &out, &errors);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------
// Part B: end-to-end pipelines, tree vs. bytecode.
// ---------------------------------------------------------------------

struct ModeConfig {
  const char* name;
  ExecOptions exec;
};

std::vector<ModeConfig> PipelineConfigs() {
  std::vector<ModeConfig> configs;
  ExecOptions single;
  configs.push_back({"single-partition", single});
  ExecOptions parts4;
  parts4.partitions = 4;
  configs.push_back({"4-partitions", parts4});
  ExecOptions threaded = parts4;
  threaded.use_threads = true;
  configs.push_back({"4-partitions-threaded", threaded});
  ExecOptions spilling;
  spilling.partitions = 2;
  spilling.memory_limit_bytes = 4096;
  spilling.spill = SpillMode::kEnabled;
  configs.push_back({"spill-tiny", spilling});
  for (size_t bs : {1u, 3u, 256u}) {
    ExecOptions sized;
    sized.batch_size = bs;
    configs.push_back({bs == 1u   ? "batch-1"
                       : bs == 3u ? "batch-3"
                                  : "batch-256",
                       sized});
  }
  return configs;
}

Collection SmallSensorData() {
  SensorDataSpec spec;
  spec.num_files = 3;
  spec.records_per_file = 12;
  spec.measurements_per_array = 24;
  spec.num_stations = 6;
  spec.seed = 7;
  return GenerateSensorCollection(spec);
}

Collection DirtySensorNdjson() {
  // Sensor-shaped records with every ninth line truncated mid-object.
  Collection c;
  for (int f = 0; f < 3; ++f) {
    std::string text;
    for (int i = 0; i < 40; ++i) {
      int v = f * 40 + i;
      if (i % 9 == 4) {
        text += "{\"station\": \"s" + std::to_string(v % 5) + "\",\n";
      } else {
        text += "{\"station\": \"s" + std::to_string(v % 5) +
                "\", \"value\": " + std::to_string(v) +
                ", \"dataType\": \"" + (v % 2 == 0 ? "TMIN" : "TMAX") +
                "\"}\n";
      }
    }
    c.files.push_back(JsonFile::FromText(std::move(text)));
  }
  return c;
}

std::vector<std::string> Rows(const QueryOutput& out) {
  std::vector<std::string> rows;
  for (const Item& item : out.items) rows.push_back(item.ToJsonString());
  return rows;
}

Result<QueryOutput> RunWithMode(const Collection& data, const char* query,
                                const ExecOptions& exec, ExprMode mode,
                                const char* collection_name = "/sensors") {
  EngineOptions options;
  options.exec = exec;
  options.exec.expr_mode = mode;
  Engine engine(options);
  engine.catalog()->RegisterCollection(collection_name, data);
  return engine.Run(query);
}

TEST(ExprDifferentialTest, PaperQueriesByteIdenticalAcrossModes) {
  Collection data = SmallSensorData();
  for (const ModeConfig& config : PipelineConfigs()) {
    for (const jparbench::NamedQuery& q : jparbench::kAllQueries) {
      SCOPED_TRACE(std::string(config.name) + " " + q.name);
      auto tree = RunWithMode(data, q.text, config.exec, ExprMode::kTree);
      auto bytecode =
          RunWithMode(data, q.text, config.exec, ExprMode::kBytecode);
      ASSERT_TRUE(tree.ok()) << tree.status().ToString();
      ASSERT_TRUE(bytecode.ok()) << bytecode.status().ToString();
      EXPECT_EQ(Rows(*bytecode), Rows(*tree));
      EXPECT_EQ(bytecode->stats.result_rows, tree->stats.result_rows);
      // The mode must actually differ: bytecode runs report compiled
      // expressions and emitted batches, tree runs report neither.
      EXPECT_EQ(tree->stats.exprs_compiled, 0u);
      EXPECT_EQ(tree->stats.batches_emitted, 0u);
      if (bytecode->stats.result_rows > 0) {
        EXPECT_GT(bytecode->stats.batches_emitted, 0u);
      }
    }
  }
}

TEST(ExprDifferentialTest, DirtyInputSkipCountsAgreeAcrossModes) {
  constexpr const char* kQuery = R"(
    for $d in collection("/dirty")
    where $d("dataType") eq "TMIN" and $d("value") ge 10
    return $d("value") + 1)";
  Collection dirty = DirtySensorNdjson();
  for (const ModeConfig& config : PipelineConfigs()) {
    SCOPED_TRACE(config.name);
    ExecOptions exec = config.exec;
    exec.on_parse_error = ParseErrorPolicy::kSkipAndCount;
    auto tree = RunWithMode(dirty, kQuery, exec, ExprMode::kTree, "/dirty");
    auto bytecode =
        RunWithMode(dirty, kQuery, exec, ExprMode::kBytecode, "/dirty");
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    ASSERT_TRUE(bytecode.ok()) << bytecode.status().ToString();
    EXPECT_GT(tree->stats.skipped_records, 0u);
    EXPECT_EQ(bytecode->stats.skipped_records, tree->stats.skipped_records);
    EXPECT_EQ(Rows(*bytecode), Rows(*tree));
  }
}

TEST(ExprDifferentialTest, RuntimeErrorsIdenticalAcrossModes) {
  // Injected per-tuple failures: the batch path defers lane errors and
  // must still report the error of the first failing tuple, with the
  // same status text the tuple-at-a-time path stops on. Sequential
  // configs only — with racing threads, "first" is not deterministic.
  constexpr const char* kDivByZero = R"(
    for $d in collection("/dirty")
    return $d("value") div 0)";
  constexpr const char* kStringPlusInt = R"(
    for $d in collection("/dirty")
    where $d("station") + 1 eq 2
    return $d)";
  Collection dirty = DirtySensorNdjson();
  for (int partitions : {1, 2}) {
    for (const char* query : {kDivByZero, kStringPlusInt}) {
      for (size_t bs : {1u, 3u, 1024u}) {
        SCOPED_TRACE(std::string(query) + " partitions=" +
                     std::to_string(partitions) +
                     " batch=" + std::to_string(bs));
        ExecOptions exec;
        exec.partitions = partitions;
        exec.batch_size = bs;
        exec.on_parse_error = ParseErrorPolicy::kSkipAndCount;
        auto tree = RunWithMode(dirty, query, exec, ExprMode::kTree, "/dirty");
        auto bytecode =
            RunWithMode(dirty, query, exec, ExprMode::kBytecode, "/dirty");
        ASSERT_FALSE(tree.ok());
        ASSERT_FALSE(bytecode.ok());
        EXPECT_EQ(bytecode.status().ToString(), tree.status().ToString());
      }
    }
  }
}

}  // namespace
}  // namespace jpar
