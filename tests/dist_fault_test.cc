// Failure handling of the distributed runtime: injected exchange
// faults, killed worker processes, cancellation and deadlines crossing
// process boundaries, admission-slot hygiene, and process cleanup.

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "data/sensor_generator.h"
#include "dist/dispatcher.h"
#include "service/query_service.h"

#ifndef JPAR_WORKER_BIN_PATH
#error "build must define JPAR_WORKER_BIN_PATH (see tests/CMakeLists.txt)"
#endif

namespace jpar {
namespace {

constexpr const char* kQ1 = R"(
  for $r in collection("/sensors")("root")()("results")()
  where $r("dataType") eq "TMIN"
  group by $date := $r("date")
  return count($r("station")))";

Collection MakeData() {
  SensorDataSpec spec;
  spec.num_files = 4;
  spec.records_per_file = 8;
  spec.measurements_per_array = 16;
  spec.num_stations = 6;
  spec.seed = 7;
  return GenerateSensorCollection(spec);
}

DistOptions MakeDist(int workers) {
  DistOptions dist;
  dist.local_workers = workers;
  dist.worker_binary = JPAR_WORKER_BIN_PATH;
  // Tight failure detection keeps the negative tests fast.
  dist.heartbeat_ms = 200;
  dist.worker_timeout_ms = 3000;
  dist.drain_timeout_ms = 1000;
  return dist;
}

/// jpar_worker children of this test process, zombies included — an
/// unreaped child is a leak (scans /proc).
std::vector<pid_t> ChildWorkerPids() {
  std::vector<pid_t> pids;
  DIR* proc = opendir("/proc");
  if (proc == nullptr) return pids;
  while (dirent* entry = readdir(proc)) {
    pid_t pid = static_cast<pid_t>(std::atol(entry->d_name));
    if (pid <= 0) continue;
    char path[64];
    std::snprintf(path, sizeof(path), "/proc/%d/stat", pid);
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) continue;
    char comm[64] = {0};
    char state = 0;
    int ppid = 0;
    int n = std::fscanf(f, "%*d (%63[^)]) %c %d", comm, &state, &ppid);
    std::fclose(f);
    (void)state;
    if (n == 3 && ppid == getpid() &&
        std::strcmp(comm, "jpar_worker") == 0) {
      pids.push_back(pid);
    }
  }
  closedir(proc);
  return pids;
}

class DistFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_.rules = RuleOptions::All();
    options_.exec.partitions = 2;
    engine_ = std::make_unique<Engine>(options_);
    engine_->catalog()->RegisterCollection("/sensors", MakeData());
    auto compiled = engine_->Compile(kQ1, options_.rules);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    compiled_ = std::make_unique<CompiledQuery>(*std::move(compiled));
  }

  Result<QueryOutput> Run(Cluster* cluster, QueryContext* ctx) {
    return cluster->Run(kQ1, options_.rules, options_.exec, *compiled_,
                        *engine_->catalog(), ctx);
  }

  EngineOptions options_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<CompiledQuery> compiled_;
};

TEST_F(DistFaultTest, DroppedExchangeFrameYieldsWorkerLost) {
  Cluster cluster(MakeDist(2));
  FaultInjector faults;
  faults.ArmAfter(FaultInjector::kExchangeFrameDrop, 1,
                  Status::IOError("injected frame drop"));
  QueryContext ctx;
  ctx.set_fault_injector(&faults);

  auto out = Run(&cluster, &ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kWorkerLost)
      << out.status().ToString();
  EXPECT_GE(faults.injected_count(FaultInjector::kExchangeFrameDrop), 1u);

  // The fault is one-shot: the next query respawns the dropped worker
  // and succeeds.
  auto retry = Run(&cluster, nullptr);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->stats.dist_workers, 2u);
  cluster.Stop();
}

TEST_F(DistFaultTest, KilledWorkerYieldsWorkerLostThenRespawns) {
  Cluster cluster(MakeDist(2));
  // Warm the cluster so the worker processes exist.
  auto warm = Run(&cluster, nullptr);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  std::vector<pid_t> workers = ChildWorkerPids();
  ASSERT_EQ(workers.size(), 2u);

  // Stall the dispatcher long enough to SIGKILL a worker mid-query.
  FaultInjector faults;
  faults.ArmStall(FaultInjector::kWorkerStall, 400);
  QueryContext ctx;
  ctx.set_fault_injector(&faults);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    kill(workers[0], SIGKILL);
  });
  auto out = Run(&cluster, &ctx);
  killer.join();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kWorkerLost)
      << out.status().ToString();

  // The dead rank is respawned on the next query.
  auto retry = Run(&cluster, nullptr);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->stats.dist_workers, 2u);
  cluster.Stop();
}

TEST_F(DistFaultTest, CancellationCrossesProcessBoundary) {
  Cluster cluster(MakeDist(2));
  FaultInjector faults;
  faults.ArmStall(FaultInjector::kWorkerStall, 500);
  auto token = std::make_shared<CancellationToken>();
  QueryContext ctx;
  ctx.set_cancellation(token);
  ctx.set_fault_injector(&faults);

  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    token->Cancel();
  });
  auto out = Run(&cluster, &ctx);
  canceller.join();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled)
      << out.status().ToString();

  // Workers acknowledged the cancel and are reusable.
  auto retry = Run(&cluster, nullptr);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  cluster.Stop();
}

TEST_F(DistFaultTest, DeadlineCrossesProcessBoundary) {
  Cluster cluster(MakeDist(2));
  FaultInjector faults;
  faults.ArmStall(FaultInjector::kWorkerStall, 500);
  QueryContext ctx;
  ctx.set_deadline_after_ms(100);
  ctx.set_fault_injector(&faults);

  auto out = Run(&cluster, &ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded)
      << out.status().ToString();

  auto retry = Run(&cluster, nullptr);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  cluster.Stop();
}

TEST_F(DistFaultTest, ServiceReleasesAdmissionOnWorkerLoss) {
  FaultInjector faults;
  ServiceOptions options;
  options.engine = options_;
  options.dist = MakeDist(2);
  options.memory_budget_bytes = 64ull << 20;
  options.fault_injector = &faults;
  QueryService service(options);
  service.catalog()->RegisterCollection("/sensors", MakeData());
  auto session = service.CreateSession();

  faults.ArmAfter(FaultInjector::kExchangeFrameDrop, 1,
                  Status::IOError("injected frame drop"));
  QueryTicket failed = session->Submit(kQ1);
  EXPECT_EQ(failed.status().code(), StatusCode::kWorkerLost)
      << failed.status().ToString();

  // The failed query released its queue slot and memory reservation,
  // and the cluster recovered for the next submission.
  service.Drain();
  EXPECT_EQ(service.Metrics().admission.reserved_bytes, 0u);
  QueryTicket ok = session->Submit(kQ1);
  EXPECT_TRUE(ok.status().ok()) << ok.status().ToString();
  service.Drain();
  EXPECT_EQ(service.Metrics().admission.reserved_bytes, 0u);
}

TEST_F(DistFaultTest, StopReapsEveryWorkerProcess) {
  {
    Cluster cluster(MakeDist(3));
    auto out = Run(&cluster, nullptr);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(ChildWorkerPids().size(), 3u);
    cluster.Stop();
  }
  // Stop() must leave neither live children nor zombies.
  for (int i = 0; i < 50 && !ChildWorkerPids().empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(ChildWorkerPids().empty());
}

}  // namespace
}  // namespace jpar
