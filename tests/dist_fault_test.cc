// Failure handling of the distributed runtime: injected exchange
// faults, killed worker processes, cancellation and deadlines crossing
// process boundaries, admission-slot hygiene, and process cleanup.

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "data/sensor_generator.h"
#include "dist/dispatcher.h"
#include "service/query_service.h"

#ifndef JPAR_WORKER_BIN_PATH
#error "build must define JPAR_WORKER_BIN_PATH (see tests/CMakeLists.txt)"
#endif

namespace jpar {
namespace {

constexpr const char* kQ1 = R"(
  for $r in collection("/sensors")("root")()("results")()
  where $r("dataType") eq "TMIN"
  group by $date := $r("date")
  return count($r("station")))";

Collection MakeData() {
  SensorDataSpec spec;
  spec.num_files = 4;
  spec.records_per_file = 8;
  spec.measurements_per_array = 16;
  spec.num_stations = 6;
  spec.seed = 7;
  return GenerateSensorCollection(spec);
}

DistOptions MakeDist(int workers) {
  DistOptions dist;
  dist.local_workers = workers;
  dist.worker_binary = JPAR_WORKER_BIN_PATH;
  // Tight failure detection keeps the negative tests fast.
  dist.heartbeat_ms = 200;
  dist.worker_timeout_ms = 3000;
  dist.drain_timeout_ms = 1000;
  return dist;
}

/// jpar_worker children of this test process, zombies included — an
/// unreaped child is a leak (scans /proc).
std::vector<pid_t> ChildWorkerPids() {
  std::vector<pid_t> pids;
  DIR* proc = opendir("/proc");
  if (proc == nullptr) return pids;
  while (dirent* entry = readdir(proc)) {
    pid_t pid = static_cast<pid_t>(std::atol(entry->d_name));
    if (pid <= 0) continue;
    char path[64];
    std::snprintf(path, sizeof(path), "/proc/%d/stat", pid);
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) continue;
    char comm[64] = {0};
    char state = 0;
    int ppid = 0;
    int n = std::fscanf(f, "%*d (%63[^)]) %c %d", comm, &state, &ppid);
    std::fclose(f);
    (void)state;
    if (n == 3 && ppid == getpid() &&
        std::strcmp(comm, "jpar_worker") == 0) {
      pids.push_back(pid);
    }
  }
  closedir(proc);
  return pids;
}

class DistFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_.rules = RuleOptions::All();
    options_.exec.partitions = 2;
    engine_ = std::make_unique<Engine>(options_);
    engine_->catalog()->RegisterCollection("/sensors", MakeData());
    auto compiled = engine_->Compile(kQ1, options_.rules);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    compiled_ = std::make_unique<CompiledQuery>(*std::move(compiled));
  }

  Result<QueryOutput> Run(Cluster* cluster, QueryContext* ctx) {
    return cluster->Run(kQ1, options_.rules, options_.exec, *compiled_,
                        *engine_->catalog(), ctx);
  }

  std::vector<std::string> Rows(const QueryOutput& output) {
    std::vector<std::string> rows;
    for (const Item& item : output.items) rows.push_back(item.ToJsonString());
    return rows;
  }

  /// Reference rows from an in-process run with partitions = 2 (the
  /// fixture's ExecOptions), which distributed runs must match exactly.
  std::vector<std::string> ReferenceRows() {
    auto local = engine_->Execute(*compiled_, options_.exec);
    EXPECT_TRUE(local.ok()) << local.status().ToString();
    return local.ok() ? Rows(*local) : std::vector<std::string>();
  }

  EngineOptions options_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<CompiledQuery> compiled_;
};

TEST_F(DistFaultTest, InvalidRecoveryKnobsRejected) {
  auto expect_invalid = [](DistOptions dist) {
    Cluster cluster(std::move(dist));
    Status st = cluster.Start();
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.ToString();
    cluster.Stop();
  };
  {
    DistOptions d = MakeDist(1);
    d.max_fragment_retries = -1;
    expect_invalid(d);
  }
  {
    DistOptions d = MakeDist(1);
    d.retry_backoff_ms = 0;
    expect_invalid(d);
  }
  {
    DistOptions d = MakeDist(1);
    d.heartbeat_ms = 0;
    expect_invalid(d);
  }
  {
    DistOptions d = MakeDist(1);
    d.worker_timeout_ms = -3;
    expect_invalid(d);
  }
  {
    DistOptions d = MakeDist(1);
    d.drain_timeout_ms = 0;
    expect_invalid(d);
  }
  {
    DistOptions d = MakeDist(1);
    d.credit_window = 0;
    expect_invalid(d);
  }
}

TEST_F(DistFaultTest, DroppedExchangeFrameYieldsWorkerLost) {
  Cluster cluster(MakeDist(2));
  FaultInjector faults;
  faults.ArmAfter(FaultInjector::kExchangeFrameDrop, 1,
                  Status::IOError("injected frame drop"));
  QueryContext ctx;
  ctx.set_fault_injector(&faults);

  auto out = Run(&cluster, &ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kWorkerLost)
      << out.status().ToString();
  EXPECT_GE(faults.injected_count(FaultInjector::kExchangeFrameDrop), 1u);

  // The fault is one-shot: the next query respawns the dropped worker
  // and succeeds.
  auto retry = Run(&cluster, nullptr);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->stats.dist_workers, 2u);
  cluster.Stop();
}

TEST_F(DistFaultTest, KilledWorkerYieldsWorkerLostThenRespawns) {
  Cluster cluster(MakeDist(2));
  // Warm the cluster so the worker processes exist.
  auto warm = Run(&cluster, nullptr);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  std::vector<pid_t> workers = ChildWorkerPids();
  ASSERT_EQ(workers.size(), 2u);

  // Stall the dispatcher long enough to SIGKILL a worker mid-query.
  FaultInjector faults;
  faults.ArmStall(FaultInjector::kWorkerStall, 400);
  QueryContext ctx;
  ctx.set_fault_injector(&faults);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    kill(workers[0], SIGKILL);
  });
  auto out = Run(&cluster, &ctx);
  killer.join();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kWorkerLost)
      << out.status().ToString();

  // The dead rank is respawned on the next query.
  auto retry = Run(&cluster, nullptr);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->stats.dist_workers, 2u);
  cluster.Stop();
}

TEST_F(DistFaultTest, KilledWorkerIsRetriedToByteIdenticalSuccess) {
  DistOptions dist = MakeDist(2);
  dist.max_fragment_retries = 3;
  dist.retry_backoff_ms = 25;
  Cluster cluster(dist);
  auto warm = Run(&cluster, nullptr);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  std::vector<pid_t> workers = ChildWorkerPids();
  ASSERT_EQ(workers.size(), 2u);

  // Same kill schedule as KilledWorkerYieldsWorkerLostThenRespawns —
  // but with a retry budget the query recovers instead of failing.
  FaultInjector faults;
  faults.ArmStall(FaultInjector::kWorkerStall, 400);
  QueryContext ctx;
  ctx.set_fault_injector(&faults);
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    kill(workers[0], SIGKILL);
  });
  auto out = Run(&cluster, &ctx);
  killer.join();
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Rows(*out), ReferenceRows());
  EXPECT_GE(out->stats.fragment_retries, 1u);
  EXPECT_GE(out->stats.workers_respawned, 1u);
  EXPECT_GT(out->stats.recovery_ms, 0.0);

  // The respawned rank keeps serving follow-up queries.
  auto again = Run(&cluster, nullptr);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->stats.dist_workers, 2u);
  EXPECT_EQ(again->stats.fragment_retries, 0u);
  cluster.Stop();
}

TEST_F(DistFaultTest, ConsumerStageRetryReplaysBankedInputs) {
  DistOptions dist = MakeDist(2);
  dist.max_fragment_retries = 2;
  dist.retry_backoff_ms = 25;
  // Deterministic placement: kill one worker right before the first
  // dispatch of the first non-leaf stage, so the retried consumer must
  // get its shuffle inputs replayed from the dispatcher's spool (the
  // producer stage already completed and is not re-run).
  std::atomic<bool> killed{false};
  dist.test_round_hook = [&](int stage_id, int attempt) {
    if (stage_id == 0 || attempt != 0 || killed.exchange(true)) return;
    std::vector<pid_t> pids = ChildWorkerPids();
    ASSERT_FALSE(pids.empty());
    kill(pids[0], SIGKILL);
  };
  Cluster cluster(dist);
  auto out = Run(&cluster, nullptr);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(killed.load());
  EXPECT_EQ(Rows(*out), ReferenceRows());
  EXPECT_GE(out->stats.fragment_retries, 1u);
  EXPECT_GE(out->stats.workers_respawned, 1u);
  EXPECT_GE(out->stats.frames_replayed, 1u);
  cluster.Stop();
}

TEST_F(DistFaultTest, RetryBudgetExhaustionYieldsWorkerLost) {
  DistOptions dist = MakeDist(2);
  dist.max_fragment_retries = 1;
  dist.retry_backoff_ms = 25;
  // Sabotage every attempt of the leaf stage, killing every worker so
  // no rank can make progress: the first loss consumes the budget, the
  // second fails the query. (Killing a single pid would not be
  // deterministic — the budget is per stage, and a kill can land on an
  // already-reaped zombie or a rank not participating in the retry.)
  std::atomic<int> kills{0};
  dist.test_round_hook = [&](int stage_id, int /*attempt*/) {
    if (stage_id != 0) return;
    for (pid_t pid : ChildWorkerPids()) {
      kill(pid, SIGKILL);
      ++kills;
    }
  };
  Cluster cluster(dist);
  auto out = Run(&cluster, nullptr);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kWorkerLost)
      << out.status().ToString();
  EXPECT_GE(kills.load(), 2);
  cluster.Stop();
}

TEST_F(DistFaultTest, CancellationCrossesProcessBoundary) {
  Cluster cluster(MakeDist(2));
  FaultInjector faults;
  faults.ArmStall(FaultInjector::kWorkerStall, 500);
  auto token = std::make_shared<CancellationToken>();
  QueryContext ctx;
  ctx.set_cancellation(token);
  ctx.set_fault_injector(&faults);

  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    token->Cancel();
  });
  auto out = Run(&cluster, &ctx);
  canceller.join();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled)
      << out.status().ToString();

  // Workers acknowledged the cancel and are reusable.
  auto retry = Run(&cluster, nullptr);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  cluster.Stop();
}

TEST_F(DistFaultTest, DeadlineCrossesProcessBoundary) {
  Cluster cluster(MakeDist(2));
  FaultInjector faults;
  faults.ArmStall(FaultInjector::kWorkerStall, 500);
  QueryContext ctx;
  ctx.set_deadline_after_ms(100);
  ctx.set_fault_injector(&faults);

  auto out = Run(&cluster, &ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded)
      << out.status().ToString();

  auto retry = Run(&cluster, nullptr);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  cluster.Stop();
}

TEST_F(DistFaultTest, ServiceReleasesAdmissionOnWorkerLoss) {
  FaultInjector faults;
  ServiceOptions options;
  options.engine = options_;
  options.dist = MakeDist(2);
  options.memory_budget_bytes = 64ull << 20;
  options.fault_injector = &faults;
  // Surface kWorkerLost to the client instead of re-running in-process
  // — this test asserts the strict failure path's admission hygiene.
  options.dist_fallback_on_worker_loss = false;
  QueryService service(options);
  service.catalog()->RegisterCollection("/sensors", MakeData());
  auto session = service.CreateSession();

  faults.ArmAfter(FaultInjector::kExchangeFrameDrop, 1,
                  Status::IOError("injected frame drop"));
  QueryTicket failed = session->Submit(kQ1);
  EXPECT_EQ(failed.status().code(), StatusCode::kWorkerLost)
      << failed.status().ToString();

  // The failed query released its queue slot and memory reservation,
  // and the cluster recovered for the next submission.
  service.Drain();
  EXPECT_EQ(service.Metrics().admission.reserved_bytes, 0u);
  QueryTicket ok = session->Submit(kQ1);
  EXPECT_TRUE(ok.status().ok()) << ok.status().ToString();
  service.Drain();
  EXPECT_EQ(service.Metrics().admission.reserved_bytes, 0u);
}

TEST_F(DistFaultTest, ServiceFallsBackInProcessOnWorkerLoss) {
  FaultInjector faults;
  ServiceOptions options;
  options.engine = options_;
  options.dist = MakeDist(2);  // no retry budget: loss surfaces at once
  options.memory_budget_bytes = 64ull << 20;
  options.fault_injector = &faults;
  ASSERT_TRUE(options.dist_fallback_on_worker_loss);  // the default
  QueryService service(options);
  service.catalog()->RegisterCollection("/sensors", MakeData());
  auto session = service.CreateSession();

  faults.ArmAfter(FaultInjector::kExchangeFrameDrop, 1,
                  Status::IOError("injected frame drop"));
  QueryTicket ticket = session->Submit(kQ1);
  ASSERT_TRUE(ticket.status().ok()) << ticket.status().ToString();
  EXPECT_EQ(Rows(ticket.output()), ReferenceRows());

  service.Drain();
  ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.distributed, 1u);
  EXPECT_EQ(metrics.dist_fallbacks, 1u);
  EXPECT_EQ(metrics.dist_worker_lost_fallbacks, 1u);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_EQ(metrics.admission.reserved_bytes, 0u);
}

TEST_F(DistFaultTest, StopReapsEveryWorkerProcess) {
  {
    Cluster cluster(MakeDist(3));
    auto out = Run(&cluster, nullptr);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(ChildWorkerPids().size(), 3u);
    cluster.Stop();
  }
  // Stop() must leave neither live children nor zombies.
  for (int i = 0; i < 50 && !ChildWorkerPids().empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(ChildWorkerPids().empty());
}

}  // namespace
}  // namespace jpar
