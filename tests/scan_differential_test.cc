// Differential property tests for the two scanning pipelines
// (DESIGN.md §9): the scalar byte-at-a-time path and the indexed
// stage-1/stage-2 path must emit identical items, identical error
// codes, and identical degraded-scan skip counts on the same input —
// valid or dirty. Documents are randomized (escapes, UTF-8, deep
// nesting) with fixed seeds so failures reproduce.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "json/projecting_reader.h"

namespace jpar {
namespace {

class DocGen {
 public:
  explicit DocGen(uint32_t seed) : rng_(seed) {}

  /// One NDJSON record: a top-level object with a fixed key set and
  /// randomized values, so projection paths always have targets.
  std::string Record() {
    std::string out = "{\"a\":" + Value(0) + ",\"b\":" + Value(0) +
                      ",\"s\":" + String() + "}";
    return out;
  }

  std::string Value(int depth) {
    if (depth >= 6) return Atom();
    switch (rng_() % 8) {
      case 0:
        return Object(depth + 1);
      case 1:
      case 2:
        return Array(depth + 1);
      case 3:
        return String();
      default:
        return Atom();
    }
  }

  std::mt19937& rng() { return rng_; }

 private:
  std::string Atom() {
    switch (rng_() % 7) {
      case 0:
        return "true";
      case 1:
        return "false";
      case 2:
        return "null";
      case 3:
        return std::to_string(static_cast<int64_t>(rng_()) - (1u << 31));
      case 4:
        return std::to_string(rng_() % 1000) + "." +
               std::to_string(rng_() % 1000);
      case 5:
        return std::to_string(rng_() % 100) + "e-" +
               std::to_string(rng_() % 20);
      default:
        return "-" + std::to_string(rng_() % 100000);
    }
  }

  std::string String() {
    // Fragments stress every string feature: escapes (incl. escaped
    // quotes and backslash runs), \uXXXX, multi-byte UTF-8, structural
    // characters and newlines inside strings.
    static const char* kFragments[] = {
        "plain",        "\\\"",       "\\\\",  "\\\\\\\"", "\\n\\t",
        "\\u00e9",      "\\u4f60",    "héllo", "wörld",    "日本語",
        "{not,struct}", "[a:b]",      "\\/",   "\\u0041",  "x",
        "",             "tab\\there",
    };
    std::string s = "\"";
    int parts = static_cast<int>(rng_() % 6);
    for (int i = 0; i < parts; ++i) {
      s += kFragments[rng_() % (sizeof(kFragments) / sizeof(*kFragments))];
    }
    s += "\"";
    return s;
  }

  std::string Object(int depth) {
    std::string s = "{";
    int n = static_cast<int>(rng_() % 4);
    for (int i = 0; i < n; ++i) {
      if (i) s += ",";
      s += "\"k" + std::to_string(i) + "\":" + Value(depth);
    }
    s += "}";
    return s;
  }

  std::string Array(int depth) {
    std::string s = "[";
    int n = static_cast<int>(rng_() % 5);
    for (int i = 0; i < n; ++i) {
      if (i) s += ",";
      s += Value(depth);
    }
    s += "]";
    return s;
  }

  std::mt19937 rng_;
};

struct ScanResult {
  std::vector<std::string> items;
  uint64_t skipped = 0;
  bool ok = true;
  StatusCode code = StatusCode::kOk;
};

ScanResult RunScan(std::string_view text, const std::vector<PathStep>& steps,
                   bool lenient, ScanMode mode) {
  ScanResult r;
  auto sink = [&r](Item item) -> Status {
    r.items.push_back(item.ToJsonString());
    return Status::OK();
  };
  Status st = ProjectJsonStream(text, steps, sink, nullptr,
                                lenient ? &r.skipped : nullptr, mode);
  r.ok = st.ok();
  r.code = st.code();
  return r;
}

void ExpectModesAgree(std::string_view text,
                      const std::vector<PathStep>& steps, bool lenient,
                      const char* what) {
  ScanResult scalar = RunScan(text, steps, lenient, ScanMode::kScalar);
  ScanResult indexed = RunScan(text, steps, lenient, ScanMode::kIndexed);
  ASSERT_EQ(scalar.ok, indexed.ok) << what;
  ASSERT_EQ(static_cast<int>(scalar.code), static_cast<int>(indexed.code))
      << what;
  ASSERT_EQ(scalar.skipped, indexed.skipped) << what;
  ASSERT_EQ(scalar.items, indexed.items) << what;
}

std::vector<std::vector<PathStep>> ProjectionPaths() {
  return {
      {},  // materialize whole documents
      {PathStep::Key("a")},
      {PathStep::Key("b"), PathStep::KeysOrMembers()},
      {PathStep::KeysOrMembers()},
      {PathStep::Key("missing")},
  };
}

TEST(ScanDifferentialTest, ValidRandomNdjson) {
  for (uint32_t seed = 1; seed <= 12; ++seed) {
    DocGen gen(seed);
    std::string buf;
    for (int i = 0; i < 40; ++i) buf += gen.Record() + "\n";
    for (const std::vector<PathStep>& steps : ProjectionPaths()) {
      for (bool lenient : {false, true}) {
        ExpectModesAgree(buf, steps, lenient, "valid ndjson");
        // Both modes must actually succeed on valid input.
        ScanResult r = RunScan(buf, steps, lenient, ScanMode::kIndexed);
        EXPECT_TRUE(r.ok);
        EXPECT_EQ(r.skipped, 0u);
      }
    }
  }
}

// Structural corruptions only: truncation, bracket imbalance, removed
// quotes, garbage atoms. (Escape validity inside *skipped* strings is
// the indexed path's one documented relaxation, so corruptions that
// merely invalidate an escape sequence are out of scope.)
std::string CorruptLine(std::string line, std::mt19937* rng) {
  switch ((*rng)() % 5) {
    case 0: {  // truncate (never right after a backslash)
      size_t cut = 1 + (*rng)() % (line.size() - 1);
      while (cut > 1 && line[cut - 1] == '\\') --cut;
      return line.substr(0, cut);
    }
    case 1: {  // drop the final closing brace
      return line.substr(0, line.size() - 1);
    }
    case 2: {  // drop the last quote: unterminated string
      size_t q = line.rfind('"');
      if (q == std::string::npos) return "garbage";
      return line.substr(0, q) + line.substr(q + 1);
    }
    case 3:
      return "nul";  // invalid literal
    default:
      return "{\"a\":12x34}";  // invalid number
  }
}

TEST(ScanDifferentialTest, DirtyNdjsonLenientSkipsAgree) {
  for (uint32_t seed = 100; seed < 110; ++seed) {
    DocGen gen(seed);
    std::string buf;
    int corrupted = 0;
    for (int i = 0; i < 40; ++i) {
      std::string line = gen.Record();
      if (gen.rng()() % 4 == 0) {
        line = CorruptLine(std::move(line), &gen.rng());
        ++corrupted;
      }
      buf += line + "\n";
    }
    ASSERT_GT(corrupted, 0);
    for (const std::vector<PathStep>& steps : ProjectionPaths()) {
      ExpectModesAgree(buf, steps, true, "dirty ndjson");
    }
    // Sanity: the degraded scan did skip records.
    ScanResult r =
        RunScan(buf, ProjectionPaths()[0], true, ScanMode::kIndexed);
    EXPECT_GT(r.skipped, 0u);
  }
}

TEST(ScanDifferentialTest, DirtyNdjsonStrictErrorsAgree) {
  for (uint32_t seed = 200; seed < 208; ++seed) {
    DocGen gen(seed);
    std::string buf;
    for (int i = 0; i < 10; ++i) buf += gen.Record() + "\n";
    std::string bad = CorruptLine(gen.Record(), &gen.rng());
    buf += bad + "\n";
    for (int i = 0; i < 5; ++i) buf += gen.Record() + "\n";
    for (const std::vector<PathStep>& steps : ProjectionPaths()) {
      ExpectModesAgree(buf, steps, false, "strict dirty");
    }
    ScanResult r = RunScan(buf, {}, false, ScanMode::kIndexed);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(static_cast<int>(r.code),
              static_cast<int>(StatusCode::kParseError));
  }
}

TEST(ScanDifferentialTest, DeepNestingBothDirections) {
  // Within the depth limit: both parse. Past it: both fail with
  // kParseError at the same point.
  for (int depth : {50, 511, 600}) {
    std::string doc = "{\"a\":";
    for (int i = 0; i < depth; ++i) doc += "[";
    doc += "1";
    for (int i = 0; i < depth; ++i) doc += "]";
    doc += "}\n";
    for (const std::vector<PathStep>& steps : ProjectionPaths()) {
      ExpectModesAgree(doc, steps, false, "deep nesting");
      ExpectModesAgree(doc, steps, true, "deep nesting lenient");
    }
  }
}

TEST(ScanDifferentialTest, PoisonedIndexRecoversLikeScalar) {
  // An unterminated string flips the in-string mask for the rest of the
  // buffer; the indexed degraded scan must rebuild and still skip
  // exactly the records the scalar scan skips.
  std::string buf =
      "{\"a\":1}\n"
      "{\"a\":\"unterminated\n"
      "{\"a\":2}\n"
      "{\"a\":\"another open\n"
      "{\"a\":3,\"s\":\"ok\"}\n";
  for (const std::vector<PathStep>& steps : ProjectionPaths()) {
    ExpectModesAgree(buf, steps, true, "poisoned index");
  }
  ScanResult r = RunScan(buf, {PathStep::Key("a")}, true, ScanMode::kIndexed);
  EXPECT_EQ(r.skipped, 2u);
  // Streaming semantics: the projected "a" value is emitted before the
  // rest of a malformed record fails, so the two unterminated strings
  // (which swallow through the following line's opening brace) appear
  // between the recovered records.
  ASSERT_EQ(r.items.size(), 5u);
  EXPECT_EQ(r.items[0], "1");
  EXPECT_EQ(r.items[1], "\"unterminated\\n{\"");
  EXPECT_EQ(r.items[2], "2");
  EXPECT_EQ(r.items[3], "\"another open\\n{\"");
  EXPECT_EQ(r.items[4], "3");
}

TEST(ScanDifferentialTest, SingleDocumentProjectJsonAgrees) {
  for (uint32_t seed = 300; seed < 306; ++seed) {
    DocGen gen(seed);
    std::string doc = gen.Record();
    for (const std::vector<PathStep>& steps : ProjectionPaths()) {
      std::vector<std::string> got[2];
      Status st[2];
      ScanMode modes[2] = {ScanMode::kScalar, ScanMode::kIndexed};
      for (int m = 0; m < 2; ++m) {
        st[m] = ProjectJson(
            doc, steps,
            [&](Item item) -> Status {
              got[m].push_back(item.ToJsonString());
              return Status::OK();
            },
            nullptr, modes[m]);
      }
      ASSERT_EQ(st[0].ok(), st[1].ok()) << doc;
      ASSERT_EQ(got[0], got[1]) << doc;
    }
  }
}

}  // namespace
}  // namespace jpar
