#include "runtime/frame.h"

#include <gtest/gtest.h>

namespace jpar {
namespace {

Tuple MakeTuple(std::initializer_list<Item> items) { return Tuple(items); }

std::vector<Tuple> ReadAll(const std::vector<Frame>& frames) {
  FrameReader reader(frames);
  std::vector<Tuple> out;
  Tuple t;
  while (true) {
    auto more = reader.Next(&t);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !*more) break;
    out.push_back(t);
  }
  return out;
}

TEST(FrameTest, RoundTripTuples) {
  FrameBuilder builder(1024);
  std::vector<Tuple> tuples = {
      MakeTuple({Item::Int64(1), Item::String("a")}),
      MakeTuple({Item::Null()}),
      MakeTuple({}),
      MakeTuple({Item::MakeArray({Item::Boolean(true)}),
                 Item::Double(2.5), Item::Int64(-7)}),
  };
  for (const Tuple& t : tuples) builder.Append(t);
  std::vector<Frame> frames = builder.Finish();
  std::vector<Tuple> back = ReadAll(frames);
  ASSERT_EQ(back.size(), tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    ASSERT_EQ(back[i].size(), tuples[i].size());
    for (size_t c = 0; c < tuples[i].size(); ++c) {
      EXPECT_TRUE(back[i][c].Equals(tuples[i][c]));
    }
  }
}

TEST(FrameTest, SplitsAtTargetSize) {
  FrameBuilder builder(256);
  for (int i = 0; i < 100; ++i) {
    builder.Append(MakeTuple({Item::String(std::string(40, 'x'))}));
  }
  std::vector<Frame> frames = builder.Finish();
  EXPECT_GT(frames.size(), 10u);
  for (size_t i = 0; i + 1 < frames.size(); ++i) {
    // Every sealed frame crossed the target, but only by one tuple.
    EXPECT_GE(frames[i].bytes.size(), 256u);
    EXPECT_LT(frames[i].bytes.size(), 256u + 64u);
  }
  EXPECT_EQ(ReadAll(frames).size(), 100u);
}

TEST(FrameTest, OversizedTupleGetsItsOwnFrameAndIsCounted) {
  FrameBuilder builder(128);
  builder.Append(MakeTuple({Item::String("small")}));
  builder.Append(MakeTuple({Item::String(std::string(1000, 'y'))}));
  builder.Append(MakeTuple({Item::String("small2")}));
  EXPECT_EQ(builder.oversized_frames(), 1u);
  EXPECT_GT(builder.max_tuple_bytes(), 1000u);
  std::vector<Frame> frames = builder.Finish();
  EXPECT_EQ(ReadAll(frames).size(), 3u);
}

TEST(FrameTest, CountsBytesAndTuples) {
  FrameBuilder builder(1 << 20);
  builder.Append(MakeTuple({Item::Int64(1)}));
  builder.Append(MakeTuple({Item::Int64(2)}));
  EXPECT_EQ(builder.tuple_count(), 2u);
  EXPECT_GT(builder.total_bytes(), 0u);
  std::vector<Frame> frames = builder.Finish();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].tuple_count, 2u);
}

TEST(FrameTest, EmptyBuilderYieldsNoFrames) {
  FrameBuilder builder(1024);
  EXPECT_TRUE(builder.Finish().empty());
}

TEST(FrameTest, ReaderHandlesEmptyFrameList) {
  std::vector<Frame> frames;
  FrameReader reader(frames);
  Tuple t;
  auto more = reader.Next(&t);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(FrameTest, CorruptFrameReportsError) {
  Frame corrupt;
  corrupt.bytes = "\x02\xff\xff";  // arity 2, garbage items
  corrupt.tuple_count = 1;
  std::vector<Frame> frames = {corrupt};
  FrameReader reader(frames);
  Tuple t;
  EXPECT_FALSE(reader.Next(&t).ok());
}

}  // namespace
}  // namespace jpar
