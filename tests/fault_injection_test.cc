// The query-lifecycle acceptance matrix: for each executor stage kind
// (pipeline, group-by + exchange, join, sort) a query is cancelled,
// deadlined, and subjected to each named fault point, and in every case
// we assert the triple the service guarantees — the ticket ends with
// the right status code, admission reservations and queue depth return
// to zero, and a subsequent query on the same service succeeds.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "runtime/query_context.h"
#include "service/query_service.h"

namespace jpar {
namespace {

std::vector<std::string> MakeDocs(int n = 60) {
  std::vector<std::string> docs;
  docs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    docs.push_back("{\"v\": " + std::to_string(i) + ", \"g\": " +
                   std::to_string(i % 5) + "}");
  }
  return docs;
}

void RegisterDocs(Catalog* catalog, const std::vector<std::string>& docs) {
  Collection c;
  for (const std::string& d : docs) c.files.push_back(JsonFile::FromText(d));
  catalog->RegisterCollection("/c", std::move(c));
}

std::vector<std::string> Rows(const QueryOutput& out) {
  std::vector<std::string> rows;
  for (const Item& i : out.items) rows.push_back(i.ToJsonString());
  return rows;
}

// One query per physical stage kind the executor implements.
struct StageQuery {
  const char* name;
  const char* query;
};

const StageQuery kStageQueries[] = {
    {"pipeline", R"(
        for $d in collection("/c")
        where $d("v") gt 54
        return $d("v"))"},
    // Group-by also exercises the hash exchange (two-step aggregation).
    {"group-by", R"(
        for $d in collection("/c")
        group by $g := $d("g")
        order by $g
        return $g)"},
    {"join", R"(
        count(
          for $a in collection("/c")
          for $b in collection("/c")
          where $a("v") eq $b("v")
          return $a("v")))"},
    {"sort", R"(
        for $d in collection("/c")
        where $d("v") gt 54
        order by $d("v") descending
        return $d("v"))"},
    // Same plan shape as group-by; the matrix runs it with partitions=2
    // so the hash exchange between the local and global aggregation
    // steps is a real multi-partition redistribution.
    {"exchange", R"(
        for $d in collection("/c")
        group by $g := $d("g")
        order by $g
        return $g)"},
};

// Pins queries inside on_query_start until Release() so a test can
// cancel or expire them deterministically while they hold a worker and
// an admission reservation.
class QueryGate {
 public:
  std::function<void(std::string_view)> Hook() {
    return [this](std::string_view) {
      std::unique_lock<std::mutex> lock(mu_);
      ++started_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    };
  }
  void AwaitStarted(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return started_ >= n; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int started_ = 0;
  bool released_ = false;
};

// The post-failure invariants every scenario must restore.
void ExpectQuiescent(const QueryService& service) {
  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.admission.reserved_bytes, 0u);
  EXPECT_EQ(m.admission.queued, 0u);
  EXPECT_EQ(m.admission.running, 0u);
}

void ExpectSubsequentQuerySucceeds(Session* session, const char* query,
                                   const std::vector<std::string>& expected) {
  QueryTicket retry = session->Submit(query);
  ASSERT_TRUE(retry.status().ok()) << retry.status().ToString();
  EXPECT_EQ(Rows(retry.output()), expected);
}

std::vector<std::string> CleanRows(const char* query, int partitions = 1) {
  EngineOptions options;
  options.exec.partitions = partitions;
  Engine engine(options);
  RegisterDocs(engine.catalog(), MakeDocs());
  auto out = engine.Run(query);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return out.ok() ? Rows(*out) : std::vector<std::string>{};
}

// ---------------------------------------------------------------------
// Cancel at each stage kind
// ---------------------------------------------------------------------

TEST(LifecycleMatrixTest, CancelEachStageKind) {
  for (const StageQuery& sq : kStageQueries) {
    SCOPED_TRACE(sq.name);
    const std::vector<std::string> expected = CleanRows(sq.query, 2);

    QueryGate gate;
    ServiceOptions options;
    options.worker_threads = 1;
    options.memory_budget_bytes = 64ull << 20;
    options.engine.exec.memory_limit_bytes = 8ull << 20;
    options.engine.exec.partitions = 2;  // real exchanges in the plan
    options.on_query_start = gate.Hook();
    QueryService service(options);
    RegisterDocs(service.catalog(), MakeDocs());
    auto session = service.CreateSession();

    QueryTicket t = session->Submit(sq.query);
    gate.AwaitStarted(1);  // holds a worker and an 8 MB reservation
    t.Cancel();
    gate.Release();

    EXPECT_EQ(t.status().code(), StatusCode::kCancelled)
        << t.status().ToString();
    service.Drain();
    ExpectQuiescent(service);
    EXPECT_EQ(service.Metrics().cancelled, 1u);
    ExpectSubsequentQuerySucceeds(session.get(), sq.query, expected);
  }
}

// ---------------------------------------------------------------------
// Deadline at each stage kind
// ---------------------------------------------------------------------

TEST(LifecycleMatrixTest, DeadlineEachStageKind) {
  for (const StageQuery& sq : kStageQueries) {
    SCOPED_TRACE(sq.name);
    const std::vector<std::string> expected = CleanRows(sq.query, 2);

    QueryGate gate;
    ServiceOptions options;
    options.worker_threads = 1;
    options.engine.exec.partitions = 2;  // real exchanges in the plan
    options.on_query_start = gate.Hook();
    QueryService service(options);
    RegisterDocs(service.catalog(), MakeDocs());
    auto session = service.CreateSession();

    // The deadline clock starts at Submit(): holding the query in the
    // gate past the deadline is a deterministic expiry, however fast
    // the query itself would run.
    SubmitOptions submit;
    submit.deadline_ms = 20;
    QueryTicket t = session->Submit(sq.query, submit);
    gate.AwaitStarted(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    gate.Release();

    EXPECT_EQ(t.status().code(), StatusCode::kDeadlineExceeded)
        << t.status().ToString();
    service.Drain();
    ExpectQuiescent(service);
    EXPECT_EQ(service.Metrics().deadline_exceeded, 1u);
    ExpectSubsequentQuerySucceeds(session.get(), sq.query, expected);
  }
}

// ---------------------------------------------------------------------
// Fault points
// ---------------------------------------------------------------------

// Each named fault point, armed at probability 1 against the stage
// whose real failure it models; after disarming, the same service must
// serve the same query.
TEST(LifecycleMatrixTest, EachFaultPointFailsThenRecovers) {
  struct FaultCase {
    std::string_view point;
    const char* query;
    Status error;
    StatusCode expected;
  };
  const FaultCase kCases[] = {
      {FaultInjector::kScanIOError, kStageQueries[0].query,
       Status::IOError("injected: scan read failed"), StatusCode::kIOError},
      {FaultInjector::kExchangeFrameDrop, kStageQueries[1].query,
       Status::IOError("injected: exchange frame dropped"),
       StatusCode::kIOError},
      {FaultInjector::kAllocFail, kStageQueries[1].query,
       Status::ResourceExhausted("injected: group table allocation"),
       StatusCode::kResourceExhausted},
      {FaultInjector::kAllocFail, kStageQueries[2].query,
       Status::ResourceExhausted("injected: join table allocation"),
       StatusCode::kResourceExhausted},
  };

  for (const FaultCase& fc : kCases) {
    SCOPED_TRACE(std::string(fc.point) + " on " + fc.query);
    const std::vector<std::string> expected = CleanRows(fc.query, 2);

    FaultInjector faults(/*seed=*/7);
    ServiceOptions options;
    options.worker_threads = 1;
    options.engine.exec.partitions = 2;
    options.fault_injector = &faults;
    QueryService service(options);
    RegisterDocs(service.catalog(), MakeDocs());
    auto session = service.CreateSession();

    faults.ArmProbability(fc.point, 1.0, fc.error);
    QueryTicket t = session->Submit(fc.query);
    EXPECT_EQ(t.status().code(), fc.expected) << t.status().ToString();
    EXPECT_GE(faults.injected_count(fc.point), 1u);

    service.Drain();
    ExpectQuiescent(service);

    faults.Disarm(fc.point);
    ExpectSubsequentQuerySucceeds(session.get(), fc.query, expected);
  }
}

// A spill I/O fault fails the query cleanly — with the injected code,
// with every temp run file removed, and with the same engine serving
// the same query once the fault is disarmed (and once spilling
// actually happens, since the fault sits on the spill I/O path).
TEST(LifecycleMatrixTest, SpillIOFaultFailsCleanlyAndRemovesTempFiles) {
  namespace fs = std::filesystem;
  const std::string spill_dir = ::testing::TempDir() + "/jpar_spill_fault";
  fs::remove_all(spill_dir);
  fs::create_directories(spill_dir);

  // Grouping on the distinct "v" field yields one group per document —
  // far over the 1 KiB budget, so the group table must spill.
  constexpr const char* kWideGroupBy = R"(
      for $d in collection("/c")
      group by $v := $d("v")
      return sum($d("v")))";
  FaultInjector faults;
  Engine engine;
  RegisterDocs(engine.catalog(), MakeDocs(600));
  auto compiled = engine.Compile(kWideGroupBy);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  ExecOptions exec;
  exec.partitions = 2;
  exec.memory_limit_bytes = 1024;
  exec.spill = SpillMode::kEnabled;
  exec.spill_dir = spill_dir;

  faults.ArmProbability(FaultInjector::kSpillIOError, 1.0,
                        Status::Internal("injected: spill device failed"));
  QueryContext ctx;
  ctx.set_fault_injector(&faults);
  auto out = engine.Execute(*compiled, exec, &ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInternal)
      << out.status().ToString();
  EXPECT_GE(faults.injected_count(FaultInjector::kSpillIOError), 1u);
  // The failed query left no temp runs behind.
  EXPECT_TRUE(fs::is_empty(spill_dir));

  faults.Disarm(FaultInjector::kSpillIOError);
  QueryContext retry_ctx;
  retry_ctx.set_fault_injector(&faults);
  auto retry = engine.Execute(*compiled, exec, &retry_ctx);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GT(retry->stats.spill_runs, 0u);
  // Consumed runs are removed eagerly; success leaves the dir empty too.
  EXPECT_TRUE(fs::is_empty(spill_dir));
  fs::remove_all(spill_dir);
}

// worker.stall does not fail by itself — it models a stuck worker, so
// its observable effect is a deadline expiring mid-execution (not in
// the admission queue): the error surfaces from inside the pipeline.
TEST(LifecycleMatrixTest, WorkerStallTripsDeadlineMidExecution) {
  FaultInjector faults;
  faults.ArmStall(FaultInjector::kWorkerStall, /*stall_ms=*/50);

  ServiceOptions options;
  options.worker_threads = 1;
  options.fault_injector = &faults;
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());
  auto session = service.CreateSession();

  SubmitOptions submit;
  submit.deadline_ms = 10;
  QueryTicket t = session->Submit(kStageQueries[0].query, submit);
  Status st = t.status();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  // Caught by an executor-stage check, past the admission-queue one.
  EXPECT_EQ(st.message().find("admission queue"), std::string::npos)
      << st.ToString();
  EXPECT_GE(faults.hit_count(FaultInjector::kWorkerStall), 1u);

  service.Drain();
  ExpectQuiescent(service);
  faults.Disarm(FaultInjector::kWorkerStall);
  QueryTicket retry = session->Submit(kStageQueries[0].query);
  EXPECT_TRUE(retry.status().ok()) << retry.status().ToString();
}

// A cancel issued while the scan is crawling through a stalled file
// lands mid-pipeline and is honored within one batch of work.
TEST(LifecycleMatrixTest, CancelLandsDuringStalledScan) {
  FaultInjector faults;
  // 60 files x 5ms: the scan takes ~300ms unless interrupted.
  faults.ArmStall(FaultInjector::kScanIOError, /*stall_ms=*/5);

  std::mutex mu;
  std::condition_variable cv;
  bool started = false;

  ServiceOptions options;
  options.worker_threads = 1;
  options.fault_injector = &faults;
  options.on_query_start = [&](std::string_view) {
    std::lock_guard<std::mutex> lock(mu);
    started = true;
    cv.notify_all();
  };
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());
  auto session = service.CreateSession();

  QueryTicket t = session->Submit(kStageQueries[0].query);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return started; });
  }
  t.Cancel();
  EXPECT_EQ(t.status().code(), StatusCode::kCancelled)
      << t.status().ToString();
  // The cancel cut the scan short: the per-file check fired before all
  // 60 files stalled through the fault point.
  EXPECT_LT(faults.hit_count(FaultInjector::kScanIOError), 60u);

  service.Drain();
  ExpectQuiescent(service);
}

// A fault on the Nth scan stops the scan there: earlier files were
// read, later ones were never touched.
TEST(LifecycleMatrixTest, NthScanFaultStopsTheScan) {
  FaultInjector faults;
  faults.ArmAfter(FaultInjector::kScanIOError, /*nth=*/30,
                  Status::IOError("disk gave up"));

  ServiceOptions options;
  options.worker_threads = 1;
  options.fault_injector = &faults;
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());
  auto session = service.CreateSession();

  QueryTicket t = session->Submit(kStageQueries[0].query);
  EXPECT_EQ(t.status().code(), StatusCode::kIOError) << t.status().ToString();
  EXPECT_EQ(faults.hit_count(FaultInjector::kScanIOError), 30u);
  EXPECT_EQ(faults.injected_count(FaultInjector::kScanIOError), 1u);
}

// ---------------------------------------------------------------------
// Queue and lifecycle interactions
// ---------------------------------------------------------------------

// A ticket cancelled while still waiting for a worker never compiles
// or executes — it dies at the admission-queue check.
TEST(LifecycleMatrixTest, CancelWhileQueuedSkipsExecution) {
  QueryGate gate;
  ServiceOptions options;
  options.worker_threads = 1;
  options.on_query_start = gate.Hook();
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());
  auto session = service.CreateSession();

  QueryTicket running = session->Submit(kStageQueries[0].query);
  gate.AwaitStarted(1);  // pins the only worker

  QueryTicket queued = session->Submit(kStageQueries[3].query);
  queued.Cancel();  // still waiting for a worker
  gate.Release();

  EXPECT_TRUE(running.status().ok()) << running.status().ToString();
  Status st = queued.status();
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("admission queue"), std::string::npos)
      << st.ToString();
  // The cancelled query never reached the plan cache or the engine.
  service.Drain();
  EXPECT_EQ(service.Metrics().plan_cache.misses, 1u);
  ExpectQuiescent(service);
}

// Negative per-submission deadline is a synchronous rejection, before
// admission.
TEST(LifecycleMatrixTest, NegativeSubmitDeadlineRejected) {
  QueryService service;
  RegisterDocs(service.catalog(), MakeDocs());
  auto session = service.CreateSession();

  SubmitOptions bad;
  bad.deadline_ms = -5;
  QueryTicket t = session->Submit(kStageQueries[0].query, bad);
  EXPECT_TRUE(t.done());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Metrics().rejected, 1u);
  EXPECT_EQ(service.Metrics().admission.admitted, 0u);
}

// The session-level ExecOptions::deadline_ms is the fallback when the
// submission does not set one.
TEST(LifecycleMatrixTest, SessionDeadlineAppliesWhenSubmitOmitsOne) {
  QueryGate gate;
  ServiceOptions options;
  options.worker_threads = 1;
  options.on_query_start = gate.Hook();
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());

  EngineOptions session_opts;
  session_opts.exec.deadline_ms = 20;
  auto session = service.CreateSession(session_opts);

  QueryTicket t = session->Submit(kStageQueries[0].query);
  gate.AwaitStarted(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  gate.Release();
  EXPECT_EQ(t.status().code(), StatusCode::kDeadlineExceeded)
      << t.status().ToString();
}

// After a mix of outcomes, every counter balances and the admission
// state is fully quiescent.
TEST(LifecycleMatrixTest, MixedOutcomesLeaveBalancedCounters) {
  FaultInjector faults;
  ServiceOptions options;
  options.worker_threads = 2;
  options.fault_injector = &faults;
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());
  auto session = service.CreateSession();

  // Success.
  QueryTicket ok = session->Submit(kStageQueries[0].query);
  ASSERT_TRUE(ok.status().ok()) << ok.status().ToString();
  // Cancelled (immediately; may land before or during execution).
  QueryTicket cancelled = session->Submit(kStageQueries[1].query);
  cancelled.Cancel();
  cancelled.Wait();
  // Deadline already expired relative to Submit.
  SubmitOptions tight;
  tight.deadline_ms = 0.001;
  QueryTicket late = session->Submit(kStageQueries[3].query, tight);
  late.Wait();
  // Injected fault.
  faults.ArmProbability(FaultInjector::kScanIOError, 1.0,
                        Status::IOError("injected"));
  QueryTicket faulty = session->Submit(kStageQueries[0].query);
  faulty.Wait();
  faults.Disarm(FaultInjector::kScanIOError);
  // Compile error.
  QueryTicket broken = session->Submit("for $d in (((");
  broken.Wait();
  // Rejected before admission.
  SubmitOptions bad;
  bad.deadline_ms = -1;
  QueryTicket rejected = session->Submit(kStageQueries[0].query, bad);
  rejected.Wait();

  service.Drain();
  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.submitted, 6u);
  EXPECT_EQ(m.succeeded + m.failed + m.rejected, m.submitted);
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_LE(m.cancelled + m.deadline_exceeded, m.failed);
  ExpectQuiescent(service);

  // And the service still works.
  QueryTicket again = session->Submit(kStageQueries[0].query);
  EXPECT_TRUE(again.status().ok()) << again.status().ToString();
}

// ---------------------------------------------------------------------
// Engine-level (no service): the same context drives a bare Execute.
// ---------------------------------------------------------------------

TEST(EngineLifecycleTest, ExecDeadlineMsAppliesWithoutAService) {
  FaultInjector faults;
  faults.ArmStall(FaultInjector::kWorkerStall, /*stall_ms=*/50);

  Engine engine;
  RegisterDocs(engine.catalog(), MakeDocs());
  auto compiled = engine.Compile(kStageQueries[0].query);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  ExecOptions exec;
  exec.deadline_ms = 10;
  QueryContext ctx;
  ctx.set_deadline_after_ms(exec.deadline_ms);
  ctx.set_fault_injector(&faults);
  auto out = engine.Execute(*compiled, exec, &ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded)
      << out.status().ToString();
}

TEST(EngineLifecycleTest, PreCancelledContextStopsAtStartup) {
  Engine engine;
  RegisterDocs(engine.catalog(), MakeDocs());
  auto compiled = engine.Compile(kStageQueries[0].query);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  QueryContext ctx;
  ctx.set_cancellation(token);
  auto out = engine.Execute(*compiled, ExecOptions(), &ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
}

TEST(EngineLifecycleTest, CooperativeChecksOffIgnoresContext) {
  Engine engine;
  RegisterDocs(engine.catalog(), MakeDocs());
  auto compiled = engine.Compile(kStageQueries[0].query);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  QueryContext ctx;
  ctx.set_cancellation(token);
  ExecOptions exec;
  exec.cooperative_checks = false;  // the bench-only escape hatch
  auto out = engine.Execute(*compiled, exec, &ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
}

}  // namespace
}  // namespace jpar
