#include "jsoniq/lexer.h"

#include <gtest/gtest.h>

namespace jpar {
namespace {

std::vector<Token> Lex(std::string_view q) {
  auto tokens = Tokenize(q);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return *tokens;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  std::vector<Token> tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, NamesAndVariables) {
  std::vector<Token> tokens = Lex("for $x in collection");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].IsName("for"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_TRUE(tokens[2].IsName("in"));
  EXPECT_TRUE(tokens[3].IsName("collection"));
}

TEST(LexerTest, HyphenatedNames) {
  // XQuery function names contain hyphens; subtraction needs spacing.
  std::vector<Token> tokens = Lex("year-from-dateTime($d) - 1");
  EXPECT_TRUE(tokens[0].IsName("year-from-dateTime"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[2].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[3].kind, TokenKind::kRParen);
  EXPECT_EQ(tokens[4].kind, TokenKind::kMinus);
  EXPECT_EQ(tokens[5].kind, TokenKind::kInteger);
}

TEST(LexerTest, UnderscoredVariables) {
  std::vector<Token> tokens = Lex("$r_min $r_max");
  EXPECT_EQ(tokens[0].text, "r_min");
  EXPECT_EQ(tokens[1].text, "r_max");
}

TEST(LexerTest, StringLiterals) {
  std::vector<Token> tokens = Lex(R"("hello" 'single' "do""ble" "es\tc")");
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "single");
  EXPECT_EQ(tokens[2].text, "do\"ble");  // doubled-quote escape
  EXPECT_EQ(tokens[3].text, "es\tc");
}

TEST(LexerTest, Numbers) {
  std::vector<Token> tokens = Lex("42 2.5 1e3 10");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 2.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_EQ(tokens[3].int_value, 10);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  std::vector<Token> tokens = Lex(":= = != < <= > >= + - * , : ( ) { } [ ]");
  TokenKind expected[] = {
      TokenKind::kBind,   TokenKind::kEq,     TokenKind::kNe,
      TokenKind::kLt,     TokenKind::kLe,     TokenKind::kGt,
      TokenKind::kGe,     TokenKind::kPlus,   TokenKind::kMinus,
      TokenKind::kStar,   TokenKind::kComma,  TokenKind::kColon,
      TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBrace,
      TokenKind::kRBrace, TokenKind::kLBracket, TokenKind::kRBracket,
      TokenKind::kEnd};
  ASSERT_EQ(tokens.size(), std::size(expected));
  for (size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(LexerTest, XQueryComments) {
  std::vector<Token> tokens = Lex("1 (: a comment (: nested :) :) 2");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].int_value, 1);
  EXPECT_EQ(tokens[1].int_value, 2);
}

TEST(LexerTest, ErrorCases) {
  EXPECT_FALSE(Tokenize("$").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("#").ok());
  EXPECT_FALSE(Tokenize("(: never closed").ok());
}

TEST(LexerTest, OffsetsPointIntoSource) {
  std::vector<Token> tokens = Lex("ab  cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 4u);
}

TEST(LexerTest, FullPaperQueryLexes) {
  auto tokens = Tokenize(R"(
    for $r in collection("/sensors")("root")()("results")()
    let $datetime := dateTime(data($r("date")))
    where year-from-dateTime($datetime) ge 2003
      and month-from-dateTime($datetime) eq 12
    group by $date := $r("date")
    return count($r("station")))");
  ASSERT_TRUE(tokens.ok());
  EXPECT_GT(tokens->size(), 50u);
}

}  // namespace
}  // namespace jpar
