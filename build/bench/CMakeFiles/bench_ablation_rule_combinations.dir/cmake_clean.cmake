file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rule_combinations.dir/bench_ablation_rule_combinations.cc.o"
  "CMakeFiles/bench_ablation_rule_combinations.dir/bench_ablation_rule_combinations.cc.o.d"
  "bench_ablation_rule_combinations"
  "bench_ablation_rule_combinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rule_combinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
