# Empty dependencies file for bench_ablation_rule_combinations.
# This may be replaced when dependencies are built.
