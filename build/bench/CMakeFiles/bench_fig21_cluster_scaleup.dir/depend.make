# Empty dependencies file for bench_fig21_cluster_scaleup.
# This may be replaced when dependencies are built.
