# Empty dependencies file for bench_fig18_document_size.
# This may be replaced when dependencies are built.
