# Empty compiler generated dependencies file for bench_fig24_mongo_speedup.
# This may be replaced when dependencies are built.
