# Empty dependencies file for bench_fig23_asterix_scaleup.
# This may be replaced when dependencies are built.
