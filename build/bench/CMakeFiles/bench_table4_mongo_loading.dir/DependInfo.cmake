
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4_mongo_loading.cc" "bench/CMakeFiles/bench_table4_mongo_loading.dir/bench_table4_mongo_loading.cc.o" "gcc" "bench/CMakeFiles/bench_table4_mongo_loading.dir/bench_table4_mongo_loading.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/jpar_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpar_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpar_jsoniq.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpar_algebra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpar_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpar_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpar_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
