# Empty compiler generated dependencies file for bench_table4_mongo_loading.
# This may be replaced when dependencies are built.
