file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_spark_loading.dir/bench_table2_spark_loading.cc.o"
  "CMakeFiles/bench_table2_spark_loading.dir/bench_table2_spark_loading.cc.o.d"
  "bench_table2_spark_loading"
  "bench_table2_spark_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_spark_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
