# Empty compiler generated dependencies file for bench_table2_spark_loading.
# This may be replaced when dependencies are built.
