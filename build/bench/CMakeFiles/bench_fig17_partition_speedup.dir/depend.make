# Empty dependencies file for bench_fig17_partition_speedup.
# This may be replaced when dependencies are built.
