# Empty dependencies file for bench_fig14_pipelining_rules.
# This may be replaced when dependencies are built.
