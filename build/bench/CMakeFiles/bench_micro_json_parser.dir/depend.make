# Empty dependencies file for bench_micro_json_parser.
# This may be replaced when dependencies are built.
