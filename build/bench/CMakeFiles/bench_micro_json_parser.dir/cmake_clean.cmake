file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_json_parser.dir/bench_micro_json_parser.cc.o"
  "CMakeFiles/bench_micro_json_parser.dir/bench_micro_json_parser.cc.o.d"
  "bench_micro_json_parser"
  "bench_micro_json_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_json_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
