# Empty compiler generated dependencies file for bench_fig25_mongo_scaleup.
# This may be replaced when dependencies are built.
