file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_mongo_scaleup.dir/bench_fig25_mongo_scaleup.cc.o"
  "CMakeFiles/bench_fig25_mongo_scaleup.dir/bench_fig25_mongo_scaleup.cc.o.d"
  "bench_fig25_mongo_scaleup"
  "bench_fig25_mongo_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_mongo_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
