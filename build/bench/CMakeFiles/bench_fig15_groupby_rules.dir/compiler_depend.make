# Empty compiler generated dependencies file for bench_fig15_groupby_rules.
# This may be replaced when dependencies are built.
