file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_groupby_rules.dir/bench_fig15_groupby_rules.cc.o"
  "CMakeFiles/bench_fig15_groupby_rules.dir/bench_fig15_groupby_rules.cc.o.d"
  "bench_fig15_groupby_rules"
  "bench_fig15_groupby_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_groupby_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
