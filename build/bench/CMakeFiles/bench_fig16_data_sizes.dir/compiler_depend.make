# Empty compiler generated dependencies file for bench_fig16_data_sizes.
# This may be replaced when dependencies are built.
