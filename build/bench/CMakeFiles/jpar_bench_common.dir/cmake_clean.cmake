file(REMOVE_RECURSE
  "CMakeFiles/jpar_bench_common.dir/baseline_queries.cc.o"
  "CMakeFiles/jpar_bench_common.dir/baseline_queries.cc.o.d"
  "CMakeFiles/jpar_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/jpar_bench_common.dir/bench_common.cc.o.d"
  "CMakeFiles/jpar_bench_common.dir/sharded_docstore.cc.o"
  "CMakeFiles/jpar_bench_common.dir/sharded_docstore.cc.o.d"
  "libjpar_bench_common.a"
  "libjpar_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpar_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
