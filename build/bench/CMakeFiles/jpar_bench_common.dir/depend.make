# Empty dependencies file for jpar_bench_common.
# This may be replaced when dependencies are built.
