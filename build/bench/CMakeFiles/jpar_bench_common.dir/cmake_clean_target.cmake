file(REMOVE_RECURSE
  "libjpar_bench_common.a"
)
