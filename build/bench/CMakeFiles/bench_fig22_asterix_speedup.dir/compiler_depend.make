# Empty compiler generated dependencies file for bench_fig22_asterix_speedup.
# This may be replaced when dependencies are built.
