# Empty dependencies file for bench_fig20_cluster_speedup.
# This may be replaced when dependencies are built.
