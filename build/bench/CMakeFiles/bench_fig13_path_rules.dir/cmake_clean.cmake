file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_path_rules.dir/bench_fig13_path_rules.cc.o"
  "CMakeFiles/bench_fig13_path_rules.dir/bench_fig13_path_rules.cc.o.d"
  "bench_fig13_path_rules"
  "bench_fig13_path_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_path_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
