# Empty compiler generated dependencies file for bench_fig13_path_rules.
# This may be replaced when dependencies are built.
