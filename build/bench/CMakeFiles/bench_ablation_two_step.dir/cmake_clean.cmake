file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_two_step.dir/bench_ablation_two_step.cc.o"
  "CMakeFiles/bench_ablation_two_step.dir/bench_ablation_two_step.cc.o.d"
  "bench_ablation_two_step"
  "bench_ablation_two_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_two_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
