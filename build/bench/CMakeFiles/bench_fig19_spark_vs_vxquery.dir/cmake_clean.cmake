file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_spark_vs_vxquery.dir/bench_fig19_spark_vs_vxquery.cc.o"
  "CMakeFiles/bench_fig19_spark_vs_vxquery.dir/bench_fig19_spark_vs_vxquery.cc.o.d"
  "bench_fig19_spark_vs_vxquery"
  "bench_fig19_spark_vs_vxquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_spark_vs_vxquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
