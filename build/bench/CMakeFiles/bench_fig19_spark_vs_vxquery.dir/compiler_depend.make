# Empty compiler generated dependencies file for bench_fig19_spark_vs_vxquery.
# This may be replaced when dependencies are built.
