file(REMOVE_RECURSE
  "CMakeFiles/explain_plans.dir/explain_plans.cpp.o"
  "CMakeFiles/explain_plans.dir/explain_plans.cpp.o.d"
  "explain_plans"
  "explain_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
