# Empty dependencies file for explain_plans.
# This may be replaced when dependencies are built.
