file(REMOVE_RECURSE
  "CMakeFiles/jpar_shell.dir/jpar_shell.cpp.o"
  "CMakeFiles/jpar_shell.dir/jpar_shell.cpp.o.d"
  "jpar_shell"
  "jpar_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpar_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
