# Empty dependencies file for jpar_shell.
# This may be replaced when dependencies are built.
