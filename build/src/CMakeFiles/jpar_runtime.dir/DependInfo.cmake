
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/aggregates.cc" "src/CMakeFiles/jpar_runtime.dir/runtime/aggregates.cc.o" "gcc" "src/CMakeFiles/jpar_runtime.dir/runtime/aggregates.cc.o.d"
  "/root/repo/src/runtime/catalog.cc" "src/CMakeFiles/jpar_runtime.dir/runtime/catalog.cc.o" "gcc" "src/CMakeFiles/jpar_runtime.dir/runtime/catalog.cc.o.d"
  "/root/repo/src/runtime/executor.cc" "src/CMakeFiles/jpar_runtime.dir/runtime/executor.cc.o" "gcc" "src/CMakeFiles/jpar_runtime.dir/runtime/executor.cc.o.d"
  "/root/repo/src/runtime/expression.cc" "src/CMakeFiles/jpar_runtime.dir/runtime/expression.cc.o" "gcc" "src/CMakeFiles/jpar_runtime.dir/runtime/expression.cc.o.d"
  "/root/repo/src/runtime/frame.cc" "src/CMakeFiles/jpar_runtime.dir/runtime/frame.cc.o" "gcc" "src/CMakeFiles/jpar_runtime.dir/runtime/frame.cc.o.d"
  "/root/repo/src/runtime/operators.cc" "src/CMakeFiles/jpar_runtime.dir/runtime/operators.cc.o" "gcc" "src/CMakeFiles/jpar_runtime.dir/runtime/operators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jpar_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
