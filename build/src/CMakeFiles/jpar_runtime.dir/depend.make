# Empty dependencies file for jpar_runtime.
# This may be replaced when dependencies are built.
