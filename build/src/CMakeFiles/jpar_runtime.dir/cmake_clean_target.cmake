file(REMOVE_RECURSE
  "libjpar_runtime.a"
)
