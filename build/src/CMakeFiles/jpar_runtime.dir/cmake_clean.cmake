file(REMOVE_RECURSE
  "CMakeFiles/jpar_runtime.dir/runtime/aggregates.cc.o"
  "CMakeFiles/jpar_runtime.dir/runtime/aggregates.cc.o.d"
  "CMakeFiles/jpar_runtime.dir/runtime/catalog.cc.o"
  "CMakeFiles/jpar_runtime.dir/runtime/catalog.cc.o.d"
  "CMakeFiles/jpar_runtime.dir/runtime/executor.cc.o"
  "CMakeFiles/jpar_runtime.dir/runtime/executor.cc.o.d"
  "CMakeFiles/jpar_runtime.dir/runtime/expression.cc.o"
  "CMakeFiles/jpar_runtime.dir/runtime/expression.cc.o.d"
  "CMakeFiles/jpar_runtime.dir/runtime/frame.cc.o"
  "CMakeFiles/jpar_runtime.dir/runtime/frame.cc.o.d"
  "CMakeFiles/jpar_runtime.dir/runtime/operators.cc.o"
  "CMakeFiles/jpar_runtime.dir/runtime/operators.cc.o.d"
  "libjpar_runtime.a"
  "libjpar_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpar_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
