file(REMOVE_RECURSE
  "libjpar_json.a"
)
