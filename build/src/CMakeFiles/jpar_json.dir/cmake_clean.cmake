file(REMOVE_RECURSE
  "CMakeFiles/jpar_json.dir/json/binary_serde.cc.o"
  "CMakeFiles/jpar_json.dir/json/binary_serde.cc.o.d"
  "CMakeFiles/jpar_json.dir/json/datetime.cc.o"
  "CMakeFiles/jpar_json.dir/json/datetime.cc.o.d"
  "CMakeFiles/jpar_json.dir/json/item.cc.o"
  "CMakeFiles/jpar_json.dir/json/item.cc.o.d"
  "CMakeFiles/jpar_json.dir/json/parser.cc.o"
  "CMakeFiles/jpar_json.dir/json/parser.cc.o.d"
  "CMakeFiles/jpar_json.dir/json/projecting_reader.cc.o"
  "CMakeFiles/jpar_json.dir/json/projecting_reader.cc.o.d"
  "libjpar_json.a"
  "libjpar_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpar_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
