# Empty compiler generated dependencies file for jpar_json.
# This may be replaced when dependencies are built.
