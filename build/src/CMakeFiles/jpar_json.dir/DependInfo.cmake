
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/json/binary_serde.cc" "src/CMakeFiles/jpar_json.dir/json/binary_serde.cc.o" "gcc" "src/CMakeFiles/jpar_json.dir/json/binary_serde.cc.o.d"
  "/root/repo/src/json/datetime.cc" "src/CMakeFiles/jpar_json.dir/json/datetime.cc.o" "gcc" "src/CMakeFiles/jpar_json.dir/json/datetime.cc.o.d"
  "/root/repo/src/json/item.cc" "src/CMakeFiles/jpar_json.dir/json/item.cc.o" "gcc" "src/CMakeFiles/jpar_json.dir/json/item.cc.o.d"
  "/root/repo/src/json/parser.cc" "src/CMakeFiles/jpar_json.dir/json/parser.cc.o" "gcc" "src/CMakeFiles/jpar_json.dir/json/parser.cc.o.d"
  "/root/repo/src/json/projecting_reader.cc" "src/CMakeFiles/jpar_json.dir/json/projecting_reader.cc.o" "gcc" "src/CMakeFiles/jpar_json.dir/json/projecting_reader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jpar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
