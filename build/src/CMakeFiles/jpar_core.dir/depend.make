# Empty dependencies file for jpar_core.
# This may be replaced when dependencies are built.
