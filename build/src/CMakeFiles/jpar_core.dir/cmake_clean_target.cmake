file(REMOVE_RECURSE
  "libjpar_core.a"
)
