file(REMOVE_RECURSE
  "CMakeFiles/jpar_core.dir/core/engine.cc.o"
  "CMakeFiles/jpar_core.dir/core/engine.cc.o.d"
  "libjpar_core.a"
  "libjpar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
