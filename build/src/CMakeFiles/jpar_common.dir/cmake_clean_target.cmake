file(REMOVE_RECURSE
  "libjpar_common.a"
)
