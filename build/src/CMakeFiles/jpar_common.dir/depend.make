# Empty dependencies file for jpar_common.
# This may be replaced when dependencies are built.
