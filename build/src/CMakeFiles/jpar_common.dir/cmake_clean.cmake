file(REMOVE_RECURSE
  "CMakeFiles/jpar_common.dir/common/status.cc.o"
  "CMakeFiles/jpar_common.dir/common/status.cc.o.d"
  "libjpar_common.a"
  "libjpar_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpar_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
