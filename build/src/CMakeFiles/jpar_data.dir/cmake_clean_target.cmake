file(REMOVE_RECURSE
  "libjpar_data.a"
)
