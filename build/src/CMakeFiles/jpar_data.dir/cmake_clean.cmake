file(REMOVE_RECURSE
  "CMakeFiles/jpar_data.dir/data/sensor_generator.cc.o"
  "CMakeFiles/jpar_data.dir/data/sensor_generator.cc.o.d"
  "libjpar_data.a"
  "libjpar_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpar_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
