# Empty compiler generated dependencies file for jpar_data.
# This may be replaced when dependencies are built.
