
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/logical_plan.cc" "src/CMakeFiles/jpar_algebra.dir/algebra/logical_plan.cc.o" "gcc" "src/CMakeFiles/jpar_algebra.dir/algebra/logical_plan.cc.o.d"
  "/root/repo/src/algebra/physical_translator.cc" "src/CMakeFiles/jpar_algebra.dir/algebra/physical_translator.cc.o" "gcc" "src/CMakeFiles/jpar_algebra.dir/algebra/physical_translator.cc.o.d"
  "/root/repo/src/algebra/rewriter.cc" "src/CMakeFiles/jpar_algebra.dir/algebra/rewriter.cc.o" "gcc" "src/CMakeFiles/jpar_algebra.dir/algebra/rewriter.cc.o.d"
  "/root/repo/src/algebra/rules/groupby_rules.cc" "src/CMakeFiles/jpar_algebra.dir/algebra/rules/groupby_rules.cc.o" "gcc" "src/CMakeFiles/jpar_algebra.dir/algebra/rules/groupby_rules.cc.o.d"
  "/root/repo/src/algebra/rules/index_rules.cc" "src/CMakeFiles/jpar_algebra.dir/algebra/rules/index_rules.cc.o" "gcc" "src/CMakeFiles/jpar_algebra.dir/algebra/rules/index_rules.cc.o.d"
  "/root/repo/src/algebra/rules/join_rules.cc" "src/CMakeFiles/jpar_algebra.dir/algebra/rules/join_rules.cc.o" "gcc" "src/CMakeFiles/jpar_algebra.dir/algebra/rules/join_rules.cc.o.d"
  "/root/repo/src/algebra/rules/path_rules.cc" "src/CMakeFiles/jpar_algebra.dir/algebra/rules/path_rules.cc.o" "gcc" "src/CMakeFiles/jpar_algebra.dir/algebra/rules/path_rules.cc.o.d"
  "/root/repo/src/algebra/rules/pipelining_rules.cc" "src/CMakeFiles/jpar_algebra.dir/algebra/rules/pipelining_rules.cc.o" "gcc" "src/CMakeFiles/jpar_algebra.dir/algebra/rules/pipelining_rules.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jpar_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpar_json.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jpar_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
