file(REMOVE_RECURSE
  "CMakeFiles/jpar_algebra.dir/algebra/logical_plan.cc.o"
  "CMakeFiles/jpar_algebra.dir/algebra/logical_plan.cc.o.d"
  "CMakeFiles/jpar_algebra.dir/algebra/physical_translator.cc.o"
  "CMakeFiles/jpar_algebra.dir/algebra/physical_translator.cc.o.d"
  "CMakeFiles/jpar_algebra.dir/algebra/rewriter.cc.o"
  "CMakeFiles/jpar_algebra.dir/algebra/rewriter.cc.o.d"
  "CMakeFiles/jpar_algebra.dir/algebra/rules/groupby_rules.cc.o"
  "CMakeFiles/jpar_algebra.dir/algebra/rules/groupby_rules.cc.o.d"
  "CMakeFiles/jpar_algebra.dir/algebra/rules/index_rules.cc.o"
  "CMakeFiles/jpar_algebra.dir/algebra/rules/index_rules.cc.o.d"
  "CMakeFiles/jpar_algebra.dir/algebra/rules/join_rules.cc.o"
  "CMakeFiles/jpar_algebra.dir/algebra/rules/join_rules.cc.o.d"
  "CMakeFiles/jpar_algebra.dir/algebra/rules/path_rules.cc.o"
  "CMakeFiles/jpar_algebra.dir/algebra/rules/path_rules.cc.o.d"
  "CMakeFiles/jpar_algebra.dir/algebra/rules/pipelining_rules.cc.o"
  "CMakeFiles/jpar_algebra.dir/algebra/rules/pipelining_rules.cc.o.d"
  "libjpar_algebra.a"
  "libjpar_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpar_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
