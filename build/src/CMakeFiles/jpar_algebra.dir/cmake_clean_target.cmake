file(REMOVE_RECURSE
  "libjpar_algebra.a"
)
