# Empty dependencies file for jpar_algebra.
# This may be replaced when dependencies are built.
