file(REMOVE_RECURSE
  "libjpar_jsoniq.a"
)
