# Empty dependencies file for jpar_jsoniq.
# This may be replaced when dependencies are built.
