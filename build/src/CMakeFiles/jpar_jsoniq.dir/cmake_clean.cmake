file(REMOVE_RECURSE
  "CMakeFiles/jpar_jsoniq.dir/jsoniq/lexer.cc.o"
  "CMakeFiles/jpar_jsoniq.dir/jsoniq/lexer.cc.o.d"
  "CMakeFiles/jpar_jsoniq.dir/jsoniq/parser.cc.o"
  "CMakeFiles/jpar_jsoniq.dir/jsoniq/parser.cc.o.d"
  "CMakeFiles/jpar_jsoniq.dir/jsoniq/translator.cc.o"
  "CMakeFiles/jpar_jsoniq.dir/jsoniq/translator.cc.o.d"
  "libjpar_jsoniq.a"
  "libjpar_jsoniq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpar_jsoniq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
