file(REMOVE_RECURSE
  "libjpar_baselines.a"
)
