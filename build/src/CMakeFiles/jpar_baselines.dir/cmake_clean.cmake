file(REMOVE_RECURSE
  "CMakeFiles/jpar_baselines.dir/baselines/asterix_like.cc.o"
  "CMakeFiles/jpar_baselines.dir/baselines/asterix_like.cc.o.d"
  "CMakeFiles/jpar_baselines.dir/baselines/compression.cc.o"
  "CMakeFiles/jpar_baselines.dir/baselines/compression.cc.o.d"
  "CMakeFiles/jpar_baselines.dir/baselines/docstore.cc.o"
  "CMakeFiles/jpar_baselines.dir/baselines/docstore.cc.o.d"
  "CMakeFiles/jpar_baselines.dir/baselines/memtable.cc.o"
  "CMakeFiles/jpar_baselines.dir/baselines/memtable.cc.o.d"
  "libjpar_baselines.a"
  "libjpar_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jpar_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
