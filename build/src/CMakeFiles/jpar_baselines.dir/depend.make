# Empty dependencies file for jpar_baselines.
# This may be replaced when dependencies are built.
