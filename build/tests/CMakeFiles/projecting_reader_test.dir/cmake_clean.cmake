file(REMOVE_RECURSE
  "CMakeFiles/projecting_reader_test.dir/projecting_reader_test.cc.o"
  "CMakeFiles/projecting_reader_test.dir/projecting_reader_test.cc.o.d"
  "projecting_reader_test"
  "projecting_reader_test.pdb"
  "projecting_reader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projecting_reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
