# Empty dependencies file for projecting_reader_test.
# This may be replaced when dependencies are built.
