# Empty compiler generated dependencies file for binary_serde_test.
# This may be replaced when dependencies are built.
