file(REMOVE_RECURSE
  "CMakeFiles/binary_serde_test.dir/binary_serde_test.cc.o"
  "CMakeFiles/binary_serde_test.dir/binary_serde_test.cc.o.d"
  "binary_serde_test"
  "binary_serde_test.pdb"
  "binary_serde_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_serde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
