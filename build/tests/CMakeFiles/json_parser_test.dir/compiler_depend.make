# Empty compiler generated dependencies file for json_parser_test.
# This may be replaced when dependencies are built.
