# Empty compiler generated dependencies file for jsoniq_parser_test.
# This may be replaced when dependencies are built.
