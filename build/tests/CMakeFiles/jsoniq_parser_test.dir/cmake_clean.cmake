file(REMOVE_RECURSE
  "CMakeFiles/jsoniq_parser_test.dir/jsoniq_parser_test.cc.o"
  "CMakeFiles/jsoniq_parser_test.dir/jsoniq_parser_test.cc.o.d"
  "jsoniq_parser_test"
  "jsoniq_parser_test.pdb"
  "jsoniq_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsoniq_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
