# Empty dependencies file for ndjson_test.
# This may be replaced when dependencies are built.
