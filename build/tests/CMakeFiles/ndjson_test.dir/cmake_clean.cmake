file(REMOVE_RECURSE
  "CMakeFiles/ndjson_test.dir/ndjson_test.cc.o"
  "CMakeFiles/ndjson_test.dir/ndjson_test.cc.o.d"
  "ndjson_test"
  "ndjson_test.pdb"
  "ndjson_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndjson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
