# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/item_test[1]_include.cmake")
include("/root/repo/build/tests/datetime_test[1]_include.cmake")
include("/root/repo/build/tests/json_parser_test[1]_include.cmake")
include("/root/repo/build/tests/projecting_reader_test[1]_include.cmake")
include("/root/repo/build/tests/binary_serde_test[1]_include.cmake")
include("/root/repo/build/tests/frame_test[1]_include.cmake")
include("/root/repo/build/tests/expression_test[1]_include.cmake")
include("/root/repo/build/tests/aggregates_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/jsoniq_parser_test[1]_include.cmake")
include("/root/repo/build/tests/translator_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_rules_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/ndjson_test[1]_include.cmake")
include("/root/repo/build/tests/paper_queries_test[1]_include.cmake")
