// Quickstart: register JSON data, run a JSONiq query, read the results.
//
//   $ ./quickstart
//
// Shows the three ways to feed the engine (inline documents, an
// in-memory collection, files on disk would use JsonFile::FromPath) and
// the statistics that come back with every result.

#include <cstdio>

#include "core/engine.h"

int main() {
  jpar::Engine engine;

  // A named document for json-doc().
  engine.catalog()->RegisterDocument(
      "inventory.json", jpar::JsonFile::FromText(R"({
        "store": {
          "fruit": [
            {"name": "apple",  "price": 1.25, "stock": 12},
            {"name": "banana", "price": 0.75, "stock": 30},
            {"name": "cherry", "price": 3.00, "stock": 0}
          ]
        }
      })"));

  // A collection (a partitioned directory of JSON files in the paper's
  // terms) for collection().
  jpar::Collection orders;
  orders.files.push_back(jpar::JsonFile::FromText(
      R"({"order": 1, "item": "apple", "qty": 3})"));
  orders.files.push_back(jpar::JsonFile::FromText(
      R"({"order": 2, "item": "banana", "qty": 5})"));
  orders.files.push_back(jpar::JsonFile::FromText(
      R"({"order": 3, "item": "apple", "qty": 2})"));
  engine.catalog()->RegisterCollection("/orders", std::move(orders));

  // 1. Navigate a document: every fruit object, one per line.
  auto fruits = engine.Run(R"(json-doc("inventory.json")("store")("fruit")())");
  if (!fruits.ok()) {
    std::fprintf(stderr, "error: %s\n", fruits.status().ToString().c_str());
    return 1;
  }
  std::printf("fruits:\n");
  for (const jpar::Item& item : fruits->items) {
    std::printf("  %s\n", item.ToJsonString().c_str());
  }

  // 2. A FLWOR over the collection with a filter.
  auto apples = engine.Run(R"(
      for $o in collection("/orders")
      where $o("item") eq "apple"
      return $o("qty"))");
  if (!apples.ok()) {
    std::fprintf(stderr, "error: %s\n", apples.status().ToString().c_str());
    return 1;
  }
  std::printf("apple quantities:");
  for (const jpar::Item& item : apples->items) {
    std::printf(" %s", item.ToJsonString().c_str());
  }
  std::printf("\n");

  // 3. Grouped aggregation, plus the execution statistics.
  auto totals = engine.Run(R"(
      for $o in collection("/orders")
      group by $item := $o("item")
      return count($o("qty")))");
  if (!totals.ok()) {
    std::fprintf(stderr, "error: %s\n", totals.status().ToString().c_str());
    return 1;
  }
  std::printf("orders per item:");
  for (const jpar::Item& item : totals->items) {
    std::printf(" %s", item.ToJsonString().c_str());
  }
  std::printf("\nstats: %.2f ms, %llu bytes scanned, %llu rows\n",
              totals->stats.real_ms,
              static_cast<unsigned long long>(totals->stats.bytes_scanned),
              static_cast<unsigned long long>(totals->stats.result_rows));
  return 0;
}
