// The paper's running example (§4): the bookstore document of
// Listing 1 and the queries of Listings 2-5, printing each logical
// plan before and after the rewrite rules — a tour of exactly the
// transformations in the paper's Figures 3-12.

#include <cstdio>

#include "core/engine.h"

namespace {

constexpr const char* kBookstore = R"({
  "bookstore": {
    "book": [
      {"-category": "COOKING", "title": "Everyday Italian",
       "author": "Giada De Laurentiis", "year": "2005", "price": "30.00"},
      {"-category": "CHILDREN", "title": "Harry Potter",
       "author": "J K. Rowling", "year": "2005", "price": "29.99"},
      {"-category": "WEB", "title": "Learning XML",
       "author": "Erik T. Ray", "year": "2003", "price": "39.95"}
    ]
  }
})";

void Explain(const jpar::Engine& engine, const char* listing,
             const char* query) {
  std::printf("\n================ %s ================\n%s\n", listing, query);
  auto compiled = engine.Compile(query);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.status().ToString().c_str());
    return;
  }
  std::printf("--- original plan (paper Figs. 3/5/9) ---\n%s",
              compiled->original_plan.c_str());
  std::printf("--- optimized plan (paper Figs. 4/6/7/8/10/11/12) ---\n%s",
              compiled->optimized_plan.c_str());
  std::printf("--- rules fired ---\n");
  for (const std::string& rule : compiled->fired_rules) {
    std::printf("  %s\n", rule.c_str());
  }
  auto result = engine.Execute(*compiled);
  if (!result.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 result.status().ToString().c_str());
    return;
  }
  std::printf("--- result (%llu rows) ---\n",
              static_cast<unsigned long long>(result->items.size()));
  for (const jpar::Item& item : result->items) {
    std::printf("  %s\n", item.ToJsonString().c_str());
  }
}

}  // namespace

int main() {
  jpar::Engine engine;
  engine.catalog()->RegisterDocument("books.json",
                                     jpar::JsonFile::FromText(kBookstore));
  jpar::Collection books;
  books.files.push_back(jpar::JsonFile::FromText(kBookstore));
  engine.catalog()->RegisterCollection("/books", std::move(books));

  Explain(engine, "Listing 2: bookstore query",
          R"(json-doc("books.json")("bookstore")("book")())");
  Explain(engine, "Listing 3: bookstore collection query",
          R"(collection("/books")("bookstore")("book")())");
  Explain(engine, "Listing 4: bookstore count query",
          R"(for $x in collection("/books")("bookstore")("book")()
group by $author := $x("author")
return count($x("title")))");
  Explain(engine, "Listing 5: bookstore count query (2nd form)",
          R"(for $x in collection("/books")("bookstore")("book")()
group by $author := $x("author")
return count(for $j in $x return $j("title")))");
  return 0;
}
