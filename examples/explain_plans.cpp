// EXPLAIN tool: type a JSONiq query, see the naive logical plan, the
// rewrite rules that fire, the optimized plan, and the physical plan.
//
//   $ ./explain_plans '<query>'
//   $ ./explain_plans            # runs a built-in demo query
//
// Queries may reference collection("/sensors") — a small generated
// sensor dataset is pre-registered.

#include <cstdio>

#include "core/engine.h"
#include "data/sensor_generator.h"

int main(int argc, char** argv) {
  const char* query = argc > 1 ? argv[1] : R"(
      for $r in collection("/sensors")("root")()("results")()
      where $r("dataType") eq "TMIN"
      group by $date := $r("date")
      return count($r("station")))";

  jpar::Engine engine;
  jpar::SensorDataSpec spec;
  spec.num_files = 2;
  spec.records_per_file = 4;
  engine.catalog()->RegisterCollection("/sensors",
                                       jpar::GenerateSensorCollection(spec));

  auto compiled = engine.Compile(query);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  std::printf("query:\n%s\n", query);
  std::printf("\n=== original (naive) logical plan ===\n%s",
              compiled->original_plan.c_str());
  std::printf("\n=== rules fired (%zu) ===\n",
              compiled->fired_rules.size());
  for (const std::string& rule : compiled->fired_rules) {
    std::printf("  %s\n", rule.c_str());
  }
  std::printf("\n=== optimized logical plan ===\n%s",
              compiled->optimized_plan.c_str());
  std::printf("\n=== physical plan ===\n%s",
              compiled->physical.ToString().c_str());

  auto result = engine.Execute(*compiled);
  if (!result.ok()) {
    std::fprintf(stderr, "execution error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== result (%llu rows) ===\n",
              static_cast<unsigned long long>(result->items.size()));
  size_t shown = 0;
  for (const jpar::Item& item : result->items) {
    if (shown++ >= 10) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  %s\n", item.ToJsonString().c_str());
  }
  return 0;
}
