// Sensor analytics: the paper's NOAA GHCN-Daily scenario end to end —
// generate a weather-sensor collection, then run the evaluation
// workload (selection, group-by aggregation, self-join) on a
// partitioned engine, printing results and per-stage statistics.
//
//   $ ./sensor_analytics [megabytes] [partitions]

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"
#include "data/sensor_generator.h"

namespace {

void RunAndReport(const jpar::Engine& engine, const char* title,
                  const char* query, size_t max_rows_to_print) {
  std::printf("\n--- %s ---\n", title);
  auto result = engine.Run(query);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return;
  }
  size_t shown = 0;
  for (const jpar::Item& item : result->items) {
    if (shown++ >= max_rows_to_print) {
      std::printf("  ... (%llu rows total)\n",
                  static_cast<unsigned long long>(result->items.size()));
      break;
    }
    std::printf("  %s\n", item.ToJsonString().c_str());
  }
  std::printf("  time: %.1f ms real, %.1f ms simulated-parallel; "
              "%.1f MB scanned\n",
              result->stats.real_ms, result->stats.makespan_ms,
              static_cast<double>(result->stats.bytes_scanned) / 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t megabytes = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  int partitions = argc > 2 ? std::atoi(argv[2]) : 4;

  jpar::SensorDataSpec spec;
  spec.start_year = 2003;
  spec.end_year = 2014;
  spec = jpar::SpecForBytes(spec, megabytes * 1024 * 1024);
  std::printf("generating ~%llu MB of GHCN-Daily-shaped JSON (%d files)...\n",
              static_cast<unsigned long long>(megabytes), spec.num_files);

  jpar::EngineOptions options;
  options.exec.partitions = partitions;
  jpar::Engine engine(options);
  engine.catalog()->RegisterCollection("/sensors",
                                       jpar::GenerateSensorCollection(spec));

  RunAndReport(engine, "Q0: all December-25 readings since 2003", R"(
      for $r in collection("/sensors")("root")()("results")()
      let $datetime := dateTime(data($r("date")))
      where year-from-dateTime($datetime) ge 2003
        and month-from-dateTime($datetime) eq 12
        and day-from-dateTime($datetime) eq 25
      return $r)", 5);

  RunAndReport(engine, "Q1: TMIN station count per date (group-by)", R"(
      for $r in collection("/sensors")("root")()("results")()
      where $r("dataType") eq "TMIN"
      group by $date := $r("date")
      return count($r("station")))", 5);

  RunAndReport(engine,
               "Q2: average daily TMAX-TMIN difference (self-join)", R"(
      avg(
        for $r_min in collection("/sensors")("root")()("results")()
        for $r_max in collection("/sensors")("root")()("results")()
        where $r_min("station") eq $r_max("station")
          and $r_min("date") eq $r_max("date")
          and $r_min("dataType") eq "TMIN"
          and $r_max("dataType") eq "TMAX"
        return $r_max("value") - $r_min("value")
      ) div 10)", 5);
  return 0;
}
