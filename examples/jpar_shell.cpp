// Interactive shell: type JSONiq queries against generated sensor data
// (or a JSON file you provide) and get results plus timings. Commands:
//
//   :explain <query>   show plans and fired rules instead of rows
//   :load <name> <file.json>   register a file as collection <name>
//   :partitions <n>    set data parallelism
//   :rules on|off      toggle the JSONiq rewrite rules
//   :quit
//
//   $ ./jpar_shell
//   jpar> for $r in collection("/sensors")("root")()("results")()
//         where $r("dataType") eq "TMIN" return $r("value")

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "data/sensor_generator.h"

namespace {

void PrintResult(const jpar::QueryOutput& out) {
  size_t shown = 0;
  for (const jpar::Item& item : out.items) {
    if (shown++ >= 20) {
      std::printf("  ... (%zu rows)\n", out.items.size());
      break;
    }
    std::printf("  %s\n", item.ToJsonString().c_str());
  }
  std::printf("-- %zu rows, %.2f ms, %.2f MB scanned\n", out.items.size(),
              out.stats.real_ms,
              static_cast<double>(out.stats.bytes_scanned) / 1e6);
}

}  // namespace

int main() {
  jpar::EngineOptions options;
  options.exec.partitions = 4;
  auto engine = std::make_unique<jpar::Engine>(options);

  jpar::SensorDataSpec spec;
  spec.num_files = 8;
  spec.records_per_file = 16;
  engine->catalog()->RegisterCollection(
      "/sensors", jpar::GenerateSensorCollection(spec));
  std::printf(
      "jpar shell — a sample \"/sensors\" collection is registered.\n"
      "Type a JSONiq query (one line), :explain <query>, :load <name>\n"
      "<file>, :partitions <n>, :rules on|off, or :quit.\n");

  std::string line;
  while (true) {
    std::printf("jpar> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == ":quit" || line == ":q") break;

    if (line.rfind(":partitions ", 0) == 0) {
      options.exec.partitions = std::atoi(line.c_str() + 12);
      if (options.exec.partitions < 1) options.exec.partitions = 1;
      engine->set_options(options);
      std::printf("partitions = %d\n", options.exec.partitions);
      continue;
    }
    if (line.rfind(":rules ", 0) == 0) {
      options.rules = line.substr(7) == "off" ? jpar::RuleOptions::None()
                                              : jpar::RuleOptions::All();
      engine->set_options(options);
      std::printf("rules %s\n", line.substr(7).c_str());
      continue;
    }
    if (line.rfind(":load ", 0) == 0) {
      std::istringstream args(line.substr(6));
      std::string name, path;
      args >> name >> path;
      if (name.empty() || path.empty()) {
        std::printf("usage: :load <name> <file.json>\n");
        continue;
      }
      jpar::Collection c;
      c.files.push_back(jpar::JsonFile::FromPath(path));
      engine->catalog()->RegisterCollection(name, std::move(c));
      std::printf("registered collection %s\n", name.c_str());
      continue;
    }
    if (line.rfind(":explain ", 0) == 0) {
      auto compiled = engine->Compile(line.substr(9));
      if (!compiled.ok()) {
        std::printf("error: %s\n", compiled.status().ToString().c_str());
        continue;
      }
      std::printf("-- original --\n%s-- optimized --\n%s-- rules --\n",
                  compiled->original_plan.c_str(),
                  compiled->optimized_plan.c_str());
      for (const std::string& r : compiled->fired_rules) {
        std::printf("  %s\n", r.c_str());
      }
      continue;
    }

    auto result = engine->Run(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*result);
  }
  return 0;
}
