#!/bin/sh
# Runs every bench binary, appending to bench_output.txt. Pass a start
# index to resume.
set -u
start=${1:-0}
i=0
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  if [ "$i" -ge "$start" ]; then
    echo "=== $(basename "$b") ==="
    timeout 900 "$b"
  fi
  i=$((i + 1))
done
