#!/bin/sh
# Runs every bench binary, appending to bench_output.txt. Pass a start
# index to resume, and/or --scale X to grow every dataset (e.g.
# `./run_benches.sh --scale 1000` runs bench_scan_throughput and
# bench_fig17 over multi-GB sensor data). bench_scan_throughput
# additionally writes BENCH_scan_throughput.json (scan GB/s per kernel +
# morsel scaling) into the repo root so the perf trajectory is
# machine-readable.
set -u
start=0
while [ "$#" -gt 0 ]; do
  case "$1" in
    --scale)
      shift
      JPAR_BENCH_SCALE="$1" && export JPAR_BENCH_SCALE
      ;;
    --scale=*)
      JPAR_BENCH_SCALE="${1#--scale=}" && export JPAR_BENCH_SCALE
      ;;
    *)
      start="$1"
      ;;
  esac
  shift
done
# Quick gate before burning bench time: the fast tier-1 suite must be
# green (the stress/randomized labels are CI's job, not this script's).
if [ -d build ] && [ "${start}" -eq 0 ]; then
  ctest --test-dir build -L tier1 -j "$(nproc 2>/dev/null || echo 2)" \
    --output-on-failure || exit 1
fi
# Distributed benches spawn worker processes; point them at the built
# binary when present (they also carry a compiled-in default).
[ -x build/src/jpar_worker ] && \
  JPAR_WORKER_BIN="$(pwd)/build/src/jpar_worker" && export JPAR_WORKER_BIN
i=0
# Compare against the bench sources so a binary that failed to build is
# a visible warning, not a silent gap in bench_output.txt.
for src in bench/bench_*.cc; do
  name=$(basename "$src" .cc)
  b="build/bench/$name"
  if [ ! -f "$b" ] || [ ! -x "$b" ]; then
    echo "WARNING: bench binary missing, skipping: $b (build it with" \
         "cmake --build build --target $name)" >&2
    continue
  fi
  if [ "$i" -ge "$start" ]; then
    echo "=== $name ==="
    timeout 900 "$b"
  fi
  i=$((i + 1))
done
[ -f BENCH_scan_throughput.json ] && \
  echo "scan throughput record: BENCH_scan_throughput.json"
[ -f BENCH_dist_cluster.json ] && \
  echo "distributed cluster record: BENCH_dist_cluster.json"
[ -f BENCH_dist_recovery.json ] && \
  echo "distributed recovery record: BENCH_dist_recovery.json"
[ -f BENCH_expr_bytecode.json ] && \
  echo "expression bytecode record: BENCH_expr_bytecode.json"
exit 0
