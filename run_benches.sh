#!/bin/sh
# Runs every bench binary, appending to bench_output.txt. Pass a start
# index to resume. bench_scan_throughput additionally writes
# BENCH_scan_throughput.json (scan GB/s per kernel + morsel scaling)
# into the repo root so the perf trajectory is machine-readable.
set -u
start=${1:-0}
# Quick gate before burning bench time: the fast tier-1 suite must be
# green (the stress/randomized labels are CI's job, not this script's).
if [ -d build ] && [ "${start}" -eq 0 ]; then
  ctest --test-dir build -L tier1 -j "$(nproc 2>/dev/null || echo 2)" \
    --output-on-failure || exit 1
fi
i=0
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  if [ "$i" -ge "$start" ]; then
    echo "=== $(basename "$b") ==="
    timeout 900 "$b"
  fi
  i=$((i + 1))
done
[ -f BENCH_scan_throughput.json ] && \
  echo "scan throughput record: BENCH_scan_throughput.json"
