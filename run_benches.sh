#!/bin/sh
# Runs every bench binary, appending to bench_output.txt. Pass a start
# index to resume, and/or --scale X to grow every dataset (e.g.
# `./run_benches.sh --scale 1000` runs bench_scan_throughput and
# bench_fig17 over multi-GB sensor data). Benches that produce
# machine-readable perf records (BENCH_*.json in the repo root) are
# verified: a bench that exits nonzero or fails to write/refresh its
# record is collected into a failure summary and the script exits
# nonzero — no more silently missing artifacts.
set -u
start=0
while [ "$#" -gt 0 ]; do
  case "$1" in
    --scale)
      shift
      JPAR_BENCH_SCALE="$1" && export JPAR_BENCH_SCALE
      ;;
    --scale=*)
      JPAR_BENCH_SCALE="${1#--scale=}" && export JPAR_BENCH_SCALE
      ;;
    *)
      start="$1"
      ;;
  esac
  shift
done
# Quick gate before burning bench time: the fast tier-1 suite must be
# green (the stress/randomized labels are CI's job, not this script's).
if [ -d build ] && [ "${start}" -eq 0 ]; then
  ctest --test-dir build -L tier1 -j "$(nproc 2>/dev/null || echo 2)" \
    --output-on-failure || exit 1
fi
# Distributed benches spawn worker processes; point them at the built
# binary when present (they also carry a compiled-in default).
[ -x build/src/jpar_worker ] && \
  JPAR_WORKER_BIN="$(pwd)/build/src/jpar_worker" && export JPAR_WORKER_BIN

# The JSON record each bench is expected to produce (empty = none).
expected_json() {
  case "$1" in
    bench_scan_throughput) echo "BENCH_scan_throughput.json" ;;
    bench_storage_tier)    echo "BENCH_storage_tier.json" ;;
    bench_dist_cluster)    echo "BENCH_dist_cluster.json" ;;
    bench_dist_recovery)   echo "BENCH_dist_recovery.json" ;;
    bench_table3_memory)   echo "BENCH_spill_memory.json" ;;
    bench_cost_model)      echo "BENCH_cost_model.json" ;;
    bench_fig13_path_rules | bench_fig14_pipelining_rules)
                           echo "BENCH_expr_bytecode.json" ;;
    *) echo "" ;;
  esac
}

failures=""
note_failure() {
  echo "FAILURE: $1" >&2
  failures="${failures}
  - $1"
}

# Nanosecond mtime plus byte size (string), or "missing": a record
# counts as produced only when its mtime or size moved during the bench
# run. Size catches same-timestamp rewrites on coarse-mtime filesystems.
record_mtime() {
  stat -c '%y %s' "$1" 2>/dev/null || echo missing
}

i=0
# Compare against the bench sources so a binary that failed to build is
# a visible warning, not a silent gap in bench_output.txt.
for src in bench/bench_*.cc; do
  name=$(basename "$src" .cc)
  # bench_common.cc is the shared library source, not a bench binary.
  [ "$name" = "bench_common" ] && continue
  b="build/bench/$name"
  if [ ! -f "$b" ] || [ ! -x "$b" ]; then
    note_failure "bench binary missing: $b (cmake --build build --target $name)"
    continue
  fi
  if [ "$i" -ge "$start" ]; then
    echo "=== $name ==="
    json=$(expected_json "$name")
    before=""
    [ -n "$json" ] && before=$(record_mtime "$json")
    if ! timeout 900 "$b"; then
      note_failure "$name exited nonzero"
    elif [ -n "$json" ]; then
      after=$(record_mtime "$json")
      if [ "$after" = "missing" ]; then
        note_failure "$name did not write $json"
      elif [ "$after" = "$before" ]; then
        note_failure "$name did not refresh $json (stale record)"
      fi
    fi
  fi
  i=$((i + 1))
done

for json in BENCH_*.json; do
  [ -f "$json" ] && echo "perf record: $json"
done

if [ -n "$failures" ]; then
  echo "" >&2
  echo "bench run FAILED:${failures}" >&2
  exit 1
fi
exit 0
