// Real-distributed companions to Figures 20/21: the paper's five
// queries over actual worker processes (spawned jpar_worker binaries,
// socketpair exchange through the dispatcher — DESIGN.md §11) instead
// of the simulated-parallel makespan model. Reports real wall-clock
// per cluster width for a fixed dataset (speed-up, Fig. 20's axis) and
// for a dataset growing with the cluster (scale-up, Fig. 21's axis),
// next to the single-process time at the same parallelism.
//
// Machine-readable results land in BENCH_dist_cluster.json. When the
// jpar_worker binary is missing (e.g. an install tree without it) the
// bench warns and exits 0 so run_benches.sh keeps going.

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "dist/dispatcher.h"

#ifndef JPAR_WORKER_BIN_PATH
#define JPAR_WORKER_BIN_PATH ""
#endif

namespace jparbench {
namespace {

using jpar::Cluster;
using jpar::DistOptions;
using jpar::ExecOptions;
using jpar::QueryContext;

constexpr int kWidths[] = {1, 2, 4};

struct Point {
  std::string mode;  // "speedup" | "scaleup"
  std::string query;
  int workers = 0;
  double dist_ms = 0;    // real wall-clock, distributed
  double local_ms = 0;   // real wall-clock, in-process partitions=W
  uint64_t dist_frames = 0;
  uint64_t dist_bytes = 0;
  uint64_t rows = 0;
};

double DistRun(Cluster* cluster, Engine* engine, const char* query,
               int workers, Point* point) {
  EngineOptions options = engine->options();
  auto compiled = engine->Compile(query, options.rules);
  CheckOk(compiled.status(), "compile");
  double total_ms = 0;
  for (int rep = 0; rep < Repeats(); ++rep) {
    auto out = cluster->Run(query, options.rules, options.exec, *compiled,
                            *engine->catalog(), nullptr);
    CheckOk(out.status(), "distributed run");
    total_ms += out->stats.real_ms;
    point->dist_frames = out->stats.dist_frames;
    point->dist_bytes = out->stats.dist_bytes;
    point->rows = out->stats.result_rows;
  }
  (void)workers;
  return total_ms / Repeats();
}

double LocalRun(Engine* engine, const char* query) {
  Measurement m = RunQuery(*engine, query);
  return m.real_ms;
}

void RunSeries(const char* mode, uint64_t base_bytes, bool grow_with_width,
               std::vector<Point>* points) {
  std::vector<std::string> header = {"query"};
  for (int w : kWidths) {
    header.push_back(std::to_string(w) + "w dist");
    header.push_back(std::to_string(w) + "w local");
  }
  PrintTableHeader(std::string("Distributed ") + mode +
                       " (real worker processes, wall-clock)",
                   header);
  for (const NamedQuery& q : kAllQueries) {
    std::vector<std::string> row = {q.name};
    for (int workers : kWidths) {
      uint64_t bytes = grow_with_width ? base_bytes * workers : base_bytes;
      const Collection& data = SensorData(bytes);
      Engine engine =
          MakeSensorEngine(data, RuleOptions::All(), workers, 4);

      DistOptions dist;
      dist.local_workers = workers;
      dist.worker_binary = JPAR_WORKER_BIN_PATH;
      Cluster cluster(dist);

      Point point;
      point.mode = mode;
      point.query = q.name;
      point.workers = workers;
      point.dist_ms = DistRun(&cluster, &engine, q.text, workers, &point);
      point.local_ms = LocalRun(&engine, q.text);
      cluster.Stop();
      points->push_back(point);
      row.push_back(FormatMs(point.dist_ms));
      row.push_back(FormatMs(point.local_ms));
    }
    PrintTableRow(row);
  }
}

void WriteJson(const std::vector<Point>& points) {
  FILE* out = std::fopen("BENCH_dist_cluster.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_dist_cluster.json\n");
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"query\": \"%s\", \"workers\": %d, "
                 "\"dist_real_ms\": %.3f, \"local_real_ms\": %.3f, "
                 "\"dist_frames\": %llu, \"dist_bytes\": %llu, "
                 "\"result_rows\": %llu}%s\n",
                 p.mode.c_str(), p.query.c_str(), p.workers, p.dist_ms,
                 p.local_ms, static_cast<unsigned long long>(p.dist_frames),
                 static_cast<unsigned long long>(p.dist_bytes),
                 static_cast<unsigned long long>(p.rows),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_dist_cluster.json\n");
}

void Run() {
  std::vector<Point> points;
  // Speed-up: fixed dataset, growing cluster (Fig. 20's shape).
  RunSeries("speedup", 4ull * 1024 * 1024, /*grow_with_width=*/false,
            &points);
  // Scale-up: per-worker dataset held constant (Fig. 21's shape) —
  // flat lines mean the exchange layer is not the bottleneck.
  RunSeries("scaleup", 2ull * 1024 * 1024, /*grow_with_width=*/true,
            &points);
  std::printf(
      "\n(dist = dispatcher + %d..%d real jpar_worker processes over\n"
      " socketpairs; local = the same binary in-process at the same\n"
      " partition count. On a single host distribution adds exchange\n"
      " serialization, so dist >= local is expected — the point is the\n"
      " trend across widths and that answers are byte-identical, which\n"
      " tests/dist_exec_test.cc asserts.)\n",
      kWidths[0], kWidths[sizeof(kWidths) / sizeof(kWidths[0]) - 1]);
  WriteJson(points);
}

}  // namespace
}  // namespace jparbench

int main() {
  const char* bin = JPAR_WORKER_BIN_PATH;
  if (bin[0] == '\0' || access(bin, X_OK) != 0) {
    std::fprintf(stderr,
                 "bench_dist_cluster: jpar_worker binary not found at '%s'; "
                 "skipping (build the jpar_worker target first)\n",
                 bin);
    return 0;
  }
  jparbench::Run();
  return 0;
}
