// Ablation (beyond the paper): every combination of the three rule
// categories on Q1 — the paper only reports cumulative stacking
// (path, then +pipelining, then +group-by). This isolates each
// category's independent contribution and their interactions (e.g.
// the pipelining rules depend on the path rules to fuse
// keys-or-members first).

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const Collection& data = SensorData(4ull * 1024 * 1024);
  PrintTableHeader("Ablation: rule-category combinations on Q1",
                   {"path", "pipelining", "group-by", "time", "max-tuple"});
  for (int mask = 0; mask < 8; ++mask) {
    RuleOptions rules = RuleOptions::None();
    rules.path_rules = (mask & 1) != 0;
    rules.pipelining_rules = (mask & 2) != 0;
    rules.groupby_rules = (mask & 4) != 0;
    rules.two_step_aggregation = rules.groupby_rules;
    Engine engine = MakeSensorEngine(data, rules, 1);
    Measurement m = RunQuery(engine, kQ1);
    PrintTableRow({rules.path_rules ? "on" : "off",
                   rules.pipelining_rules ? "on" : "off",
                   rules.groupby_rules ? "on" : "off",
                   FormatMs(m.real_ms), FormatBytes(m.max_tuple_bytes)});
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
