#include "bench/bench_common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace jparbench {

double ScaleFactor() {
  static const double scale = [] {
    const char* env = std::getenv("JPAR_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double v = std::atof(env);
    return v > 0 ? v : 1.0;
  }();
  return scale;
}

int Repeats() {
  static const int repeats = [] {
    const char* env = std::getenv("JPAR_BENCH_REPEATS");
    if (env == nullptr) return 3;
    int v = std::atoi(env);
    return v > 0 ? v : 3;
  }();
  return repeats;
}

const Collection& SensorData(uint64_t base_bytes, int measurements_per_array,
                             uint64_t seed) {
  struct Key {
    uint64_t bytes;
    int mpa;
    uint64_t seed;
    bool operator<(const Key& o) const {
      if (bytes != o.bytes) return bytes < o.bytes;
      if (mpa != o.mpa) return mpa < o.mpa;
      return seed < o.seed;
    }
  };
  static std::map<Key, Collection>& cache = *new std::map<Key, Collection>();
  uint64_t target = static_cast<uint64_t>(
      static_cast<double>(base_bytes) * ScaleFactor());
  Key key{target, measurements_per_array, seed};
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  jpar::SensorDataSpec spec;
  spec.measurements_per_array = measurements_per_array;
  spec.seed = seed;
  spec.num_stations = 64;
  // Group-key cardinality must shrink with the scaled dataset the way
  // the paper's 15-year range relates to 803 GB, or exchange volume
  // (partitions x groups) dwarfs the scan; two years keeps the ratio
  // sane at bench scales.
  spec.start_year = 2013;
  spec.end_year = 2014;
  // Keep at least ~128 files so every partition of a 9-node x 4 cluster
  // has several files (the paper: 80k files for 36 partitions).
  uint64_t per_record = 40 + static_cast<uint64_t>(measurements_per_array) *
                                 105;
  uint64_t per_file_target = target / 128;
  if (per_file_target < 16 * 1024) per_file_target = 16 * 1024;
  if (per_file_target > 512 * 1024) per_file_target = 512 * 1024;
  spec.records_per_file =
      static_cast<int>(per_file_target / per_record) + 1;
  spec = jpar::SpecForBytes(spec, target);
  return cache.emplace(key, jpar::GenerateSensorCollection(spec))
      .first->second;
}

Engine MakeSensorEngine(const Collection& data, RuleOptions rules,
                        int partitions, int partitions_per_node) {
  EngineOptions options;
  options.rules = rules;
  options.exec.partitions = partitions;
  options.exec.partitions_per_node = partitions_per_node;
  // The paper's cluster interconnect is fast relative to its
  // disk-bound scans; model 10 Gbps so scaled-down datasets keep a
  // comparable compute:network ratio.
  options.exec.network_gbps = 10.0;
  Engine engine(options);
  engine.catalog()->RegisterCollection("/sensors", data);
  return engine;
}

Measurement RunQuery(const Engine& engine, const char* query) {
  Measurement m;
  auto compiled = engine.Compile(query);
  CheckOk(compiled.status(), "compile");
  for (int i = 0; i < Repeats(); ++i) {
    auto result = engine.Execute(*compiled);
    CheckOk(result.status(), "execute");
    m.real_ms += result->stats.real_ms;
    m.makespan_ms += result->stats.makespan_ms;
    m.result_rows = result->stats.result_rows;
    if (result->stats.peak_retained_bytes > m.peak_bytes) {
      m.peak_bytes = result->stats.peak_retained_bytes;
    }
    m.spill_runs = result->stats.spill_runs;
    m.spill_bytes = result->stats.spill_bytes_written;
    m.spill_merge_passes = result->stats.spill_merge_passes;
    m.pipeline_bytes = 0;
    for (const jpar::StageStats& s : result->stats.stages) {
      if (s.max_tuple_bytes > m.max_tuple_bytes) {
        m.max_tuple_bytes = s.max_tuple_bytes;
      }
      m.pipeline_bytes += s.pipeline_bytes;
    }
  }
  m.real_ms /= Repeats();
  m.makespan_ms /= Repeats();
  return m;
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const std::string& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
  std::fflush(stdout);  // keep partial tables visible through pipes
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) std::printf("%16s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatMs(double ms) {
  char buf[32];
  if (ms >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ms / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms", ms);
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "B", bytes);
  }
  return buf;
}

void CheckOk(const jpar::Status& status, const char* context) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failure (%s): %s\n", context,
                 status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace jparbench
