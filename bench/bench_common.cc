#include "bench/bench_common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "json/parser.h"

namespace jparbench {

namespace {
// CLI overrides (InitBenchArgs); 0 = not set, fall back to the env.
double g_scale_override = 0;
int g_repeats_override = 0;
}  // namespace

void InitBenchArgs(int argc, char** argv) {
  auto flag_value = [&](int* i, const char* flag) -> const char* {
    size_t len = std::strlen(flag);
    if (std::strncmp(argv[*i], flag, len) != 0) return nullptr;
    if (argv[*i][len] == '=') return argv[*i] + len + 1;
    if (argv[*i][len] == '\0' && *i + 1 < argc) return argv[++*i];
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    if (const char* v = flag_value(&i, "--scale")) {
      double s = std::atof(v);
      if (s <= 0) {
        std::fprintf(stderr, "--scale must be > 0, got '%s'\n", v);
        std::exit(2);
      }
      g_scale_override = s;
    } else if (const char* v2 = flag_value(&i, "--repeats")) {
      int r = std::atoi(v2);
      if (r < 1) {
        std::fprintf(stderr, "--repeats must be >= 1, got '%s'\n", v2);
        std::exit(2);
      }
      g_repeats_override = r;
    } else {
      std::fprintf(stderr,
                   "unknown bench flag '%s'\n"
                   "usage: %s [--scale X] [--repeats N]\n",
                   argv[i], argv[0]);
      std::exit(2);
    }
  }
}

double ScaleFactor() {
  if (g_scale_override > 0) return g_scale_override;
  static const double scale = [] {
    const char* env = std::getenv("JPAR_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    double v = std::atof(env);
    return v > 0 ? v : 1.0;
  }();
  return scale;
}

int Repeats() {
  if (g_repeats_override > 0) return g_repeats_override;
  static const int repeats = [] {
    const char* env = std::getenv("JPAR_BENCH_REPEATS");
    if (env == nullptr) return 3;
    int v = std::atoi(env);
    return v > 0 ? v : 3;
  }();
  return repeats;
}

const Collection& SensorData(uint64_t base_bytes, int measurements_per_array,
                             uint64_t seed) {
  struct Key {
    uint64_t bytes;
    int mpa;
    uint64_t seed;
    bool operator<(const Key& o) const {
      if (bytes != o.bytes) return bytes < o.bytes;
      if (mpa != o.mpa) return mpa < o.mpa;
      return seed < o.seed;
    }
  };
  static std::map<Key, Collection>& cache = *new std::map<Key, Collection>();
  uint64_t target = static_cast<uint64_t>(
      static_cast<double>(base_bytes) * ScaleFactor());
  Key key{target, measurements_per_array, seed};
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  jpar::SensorDataSpec spec;
  spec.measurements_per_array = measurements_per_array;
  spec.seed = seed;
  spec.num_stations = 64;
  // Group-key cardinality must shrink with the scaled dataset the way
  // the paper's 15-year range relates to 803 GB, or exchange volume
  // (partitions x groups) dwarfs the scan; two years keeps the ratio
  // sane at bench scales.
  spec.start_year = 2013;
  spec.end_year = 2014;
  // Keep at least ~128 files so every partition of a 9-node x 4 cluster
  // has several files (the paper: 80k files for 36 partitions).
  uint64_t per_record = 40 + static_cast<uint64_t>(measurements_per_array) *
                                 105;
  uint64_t per_file_target = target / 128;
  if (per_file_target < 16 * 1024) per_file_target = 16 * 1024;
  if (per_file_target > 512 * 1024) per_file_target = 512 * 1024;
  spec.records_per_file =
      static_cast<int>(per_file_target / per_record) + 1;
  spec = jpar::SpecForBytes(spec, target);
  return cache.emplace(key, jpar::GenerateSensorCollection(spec))
      .first->second;
}

Engine MakeSensorEngine(const Collection& data, RuleOptions rules,
                        int partitions, int partitions_per_node,
                        ExprMode expr_mode) {
  EngineOptions options;
  options.rules = rules;
  options.exec.partitions = partitions;
  options.exec.partitions_per_node = partitions_per_node;
  options.exec.expr_mode = expr_mode;
  // The paper's cluster interconnect is fast relative to its
  // disk-bound scans; model 10 Gbps so scaled-down datasets keep a
  // comparable compute:network ratio.
  options.exec.network_gbps = 10.0;
  Engine engine(options);
  engine.catalog()->RegisterCollection("/sensors", data);
  return engine;
}

Measurement RunQuery(const Engine& engine, const char* query) {
  Measurement m;
  auto compiled = engine.Compile(query);
  CheckOk(compiled.status(), "compile");
  for (int i = 0; i < Repeats(); ++i) {
    auto result = engine.Execute(*compiled);
    CheckOk(result.status(), "execute");
    m.real_ms += result->stats.real_ms;
    m.makespan_ms += result->stats.makespan_ms;
    m.result_rows = result->stats.result_rows;
    if (result->stats.peak_retained_bytes > m.peak_bytes) {
      m.peak_bytes = result->stats.peak_retained_bytes;
    }
    m.spill_runs = result->stats.spill_runs;
    m.spill_bytes = result->stats.spill_bytes_written;
    m.spill_merge_passes = result->stats.spill_merge_passes;
    m.pipeline_bytes = 0;
    for (const jpar::StageStats& s : result->stats.stages) {
      if (s.max_tuple_bytes > m.max_tuple_bytes) {
        m.max_tuple_bytes = s.max_tuple_bytes;
      }
      m.pipeline_bytes += s.pipeline_bytes;
    }
  }
  m.real_ms /= Repeats();
  m.makespan_ms /= Repeats();
  return m;
}

void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const std::string& c : columns) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
  std::fflush(stdout);  // keep partial tables visible through pipes
}

void PrintTableRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) std::printf("%16s", c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

std::string FormatMs(double ms) {
  char buf[32];
  if (ms >= 1000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ms / 1000.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms", ms);
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2fGB",
                  static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 "B", bytes);
  }
  return buf;
}

void CheckOk(const jpar::Status& status, const char* context) {
  if (!status.ok()) {
    std::fprintf(stderr, "bench failure (%s): %s\n", context,
                 status.ToString().c_str());
    std::exit(1);
  }
}

void UpdateBenchJsonSection(const std::string& path,
                            const std::string& section_name,
                            const std::string& section_json) {
  // Preserve every other section of the shared file; a corrupt or
  // missing file degrades to a fresh single-section object.
  std::vector<std::pair<std::string, std::string>> sections;
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream buf;
      buf << in.rdbuf();
      auto doc = jpar::ParseJson(buf.str());
      if (doc.ok() && doc->is_object()) {
        for (const jpar::ObjectField& f : doc->object()) {
          if (f.key == section_name) continue;
          sections.emplace_back(f.key, f.value.ToJsonString());
        }
      }
    }
  }
  sections.emplace_back(section_name, section_json);
  std::ofstream out(path, std::ios::trunc);
  out << "{\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    out << "  \"" << sections[i].first << "\": " << sections[i].second;
    out << (i + 1 < sections.size() ? ",\n" : "\n");
  }
  out << "}\n";
}

}  // namespace jparbench
