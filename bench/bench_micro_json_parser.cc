// Microbenchmarks (google-benchmark) for the substrate layers: DOM
// parsing, projected scanning, binary item serde, and the baseline
// compression codec. These quantify why the DATASCAN projection wins:
// a projected scan touches every byte but materializes almost nothing.

#include <benchmark/benchmark.h>

#include "baselines/compression.h"
#include "data/sensor_generator.h"
#include "json/binary_serde.h"
#include "json/parser.h"
#include "json/projecting_reader.h"
#include "json/structural_index.h"

namespace {

std::string MakeFile() {
  jpar::SensorDataSpec spec;
  spec.records_per_file = 64;
  return jpar::GenerateSensorFile(spec, 0);
}

void BM_ParseJsonDom(benchmark::State& state) {
  std::string text = MakeFile();
  for (auto _ : state) {
    auto item = jpar::ParseJson(text);
    benchmark::DoNotOptimize(item);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ParseJsonDom);

void ProjectedScan(benchmark::State& state,
                   const std::vector<jpar::PathStep>& steps,
                   jpar::ScanMode mode) {
  std::string text = MakeFile();
  for (auto _ : state) {
    size_t count = 0;
    auto st = jpar::ProjectJson(
        text, steps,
        [&](jpar::Item) {
          ++count;
          return jpar::Status::OK();
        },
        nullptr, mode);
    benchmark::DoNotOptimize(count);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}

std::vector<jpar::PathStep> DatePath() {
  return {jpar::PathStep::Key("root"), jpar::PathStep::KeysOrMembers(),
          jpar::PathStep::Key("results"), jpar::PathStep::KeysOrMembers(),
          jpar::PathStep::Key("date")};
}

/// Q0-style selection: one shallow field per record, everything else
/// (the fat "results" arrays) is SkipValue'd — the shape where the
/// quote/op bitmaps pay off most.
std::vector<jpar::PathStep> SkipHeavyPath() {
  return {jpar::PathStep::Key("root"), jpar::PathStep::KeysOrMembers(),
          jpar::PathStep::Key("metadata"), jpar::PathStep::Key("count")};
}

void BM_ProjectedScanDates(benchmark::State& state) {
  ProjectedScan(state, DatePath(), jpar::ScanMode::kIndexed);
}
BENCHMARK(BM_ProjectedScanDates);

void BM_ProjectedScanDatesScalar(benchmark::State& state) {
  ProjectedScan(state, DatePath(), jpar::ScanMode::kScalar);
}
BENCHMARK(BM_ProjectedScanDatesScalar);

void BM_ProjectedScanSkipHeavy(benchmark::State& state) {
  ProjectedScan(state, SkipHeavyPath(), jpar::ScanMode::kIndexed);
}
BENCHMARK(BM_ProjectedScanSkipHeavy);

void BM_ProjectedScanSkipHeavyScalar(benchmark::State& state) {
  ProjectedScan(state, SkipHeavyPath(), jpar::ScanMode::kScalar);
}
BENCHMARK(BM_ProjectedScanSkipHeavyScalar);

void BM_StructuralIndexBuild(benchmark::State& state) {
  std::string text = MakeFile();
  jpar::SimdLevel level =
      jpar::SupportedSimdLevels()[static_cast<size_t>(state.range(0))];
  state.SetLabel(jpar::SimdLevelName(level));
  for (auto _ : state) {
    jpar::StructuralIndex idx = jpar::StructuralIndex::Build(text, level);
    benchmark::DoNotOptimize(idx);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_StructuralIndexBuild)
    ->DenseRange(0, static_cast<int64_t>(
                        jpar::SupportedSimdLevels().size() - 1));

void BM_BinarySerde(benchmark::State& state) {
  std::string text = MakeFile();
  jpar::Item doc = *jpar::ParseJson(text);
  for (auto _ : state) {
    std::string binary = jpar::SerializeItem(doc);
    auto back = jpar::DeserializeItem(binary);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_BinarySerde);

void BM_LzRoundTrip(benchmark::State& state) {
  std::string text = MakeFile();
  for (auto _ : state) {
    std::string compressed = jpar::LzCompress(text);
    auto back = jpar::LzDecompress(compressed);
    benchmark::DoNotOptimize(back);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_LzRoundTrip);

}  // namespace

BENCHMARK_MAIN();
