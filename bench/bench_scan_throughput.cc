// Scan-throughput tracking bench (DESIGN.md §9). Measures, on the
// NOAA-style NDJSON corpus:
//
//   1. stage-1 structural index build GB/s for every kernel the host
//      supports (SWAR always; SSE2/AVX2 when present),
//   2. projected-scan GB/s for the scalar byte-loop vs the indexed
//      pipeline, on a materialize-heavy and a SkipValue-heavy path,
//   3. morsel-parallel scaling of one large file: per-morsel times are
//      measured sequentially and LPT-scheduled onto 1/2/4/8 modeled
//      cores (the reproduction host has one core, same convention as
//      Fig. 17), next to the real threaded wall-clock for the record.
//
// Besides the stdout tables it writes BENCH_scan_throughput.json to
// the current directory (run_benches.sh runs from the repo root) so
// the perf trajectory is machine-readable across commits.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <queue>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "json/projecting_reader.h"
#include "json/structural_index.h"

namespace jparbench {
namespace {

using jpar::PathStep;
using jpar::ProjectJsonStream;
using jpar::ScanMode;
using jpar::SimdLevel;
using jpar::SimdLevelName;
using jpar::StructuralIndex;

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::string MakeCorpus(uint64_t target_bytes) {
  SensorDataSpec spec;
  spec.measurements_per_array = 30;
  spec.records_per_file = 64;
  std::string corpus;
  for (int file = 0; corpus.size() < target_bytes; ++file) {
    for (std::string& doc : jpar::GenerateUnwrappedDocuments(spec, file)) {
      corpus += doc;
      corpus += '\n';
    }
  }
  return corpus;
}

double IndexBuildGbps(const std::string& corpus, SimdLevel level) {
  double best = 0;
  for (int rep = 0; rep < Repeats(); ++rep) {
    Clock::time_point t0 = Clock::now();
    StructuralIndex idx = StructuralIndex::Build(corpus, level);
    Clock::time_point t1 = Clock::now();
    if (idx.size() != corpus.size()) {
      std::fprintf(stderr, "index size mismatch\n");
      std::exit(1);
    }
    double gbps = static_cast<double>(corpus.size()) / 1e9 / Seconds(t0, t1);
    best = std::max(best, gbps);
  }
  return best;
}

double ScanGbps(const std::string& corpus, const std::vector<PathStep>& steps,
                ScanMode mode) {
  double best = 0;
  for (int rep = 0; rep < Repeats(); ++rep) {
    size_t items = 0;
    Clock::time_point t0 = Clock::now();
    jpar::Status st = ProjectJsonStream(
        corpus, steps,
        [&items](jpar::Item) {
          ++items;
          return jpar::Status::OK();
        },
        nullptr, nullptr, mode);
    Clock::time_point t1 = Clock::now();
    CheckOk(st, "scan");
    if (items == 0) {
      std::fprintf(stderr, "scan emitted nothing\n");
      std::exit(1);
    }
    double gbps = static_cast<double>(corpus.size()) / 1e9 / Seconds(t0, t1);
    best = std::max(best, gbps);
  }
  return best;
}

/// Newline-aligned morsel boundaries, mirroring the executor's split.
std::vector<std::pair<size_t, size_t>> SplitMorsels(const std::string& text,
                                                    size_t morsel_bytes) {
  std::vector<std::pair<size_t, size_t>> out;
  size_t begin = 0;
  while (begin < text.size()) {
    size_t end = text.size();
    size_t target = begin + morsel_bytes - 1;
    if (target < text.size()) {
      size_t nl = text.find('\n', target);
      end = nl == std::string::npos ? text.size() : nl + 1;
    }
    out.push_back({begin, end});
    begin = end;
  }
  return out;
}

double ScanRange(const std::string& text, size_t begin, size_t end,
                 const std::vector<PathStep>& steps) {
  std::string_view view(text.data() + begin, end - begin);
  size_t items = 0;
  Clock::time_point t0 = Clock::now();
  jpar::Status st = ProjectJsonStream(
      view, steps,
      [&items](jpar::Item) {
        ++items;
        return jpar::Status::OK();
      },
      nullptr, nullptr, ScanMode::kIndexed);
  Clock::time_point t1 = Clock::now();
  CheckOk(st, "morsel scan");
  return Seconds(t0, t1);
}

/// LPT (longest processing time first) list scheduling of task times
/// onto `cores` workers; returns the makespan.
double LptMakespan(std::vector<double> tasks, int cores) {
  std::sort(tasks.begin(), tasks.end(), std::greater<double>());
  std::priority_queue<double, std::vector<double>, std::greater<double>> load;
  for (int i = 0; i < cores; ++i) load.push(0.0);
  for (double t : tasks) {
    double least = load.top();
    load.pop();
    load.push(least + t);
  }
  double makespan = 0;
  while (!load.empty()) {
    makespan = std::max(makespan, load.top());
    load.pop();
  }
  return makespan;
}

/// Real threaded wall-clock: workers pull morsels off an atomic queue,
/// exactly like Executor::ExecDataScanMorsels.
double ThreadedWallClock(const std::string& text,
                         const std::vector<std::pair<size_t, size_t>>& morsels,
                         const std::vector<PathStep>& steps, int threads) {
  std::atomic<size_t> next{0};
  Clock::time_point t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    pool.emplace_back([&] {
      while (true) {
        size_t t = next.fetch_add(1);
        if (t >= morsels.size()) break;
        ScanRange(text, morsels[t].first, morsels[t].second, steps);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  return Seconds(t0, Clock::now());
}

void Run() {
  uint64_t target =
      static_cast<uint64_t>(8.0 * 1024 * 1024 * ScaleFactor());
  std::string corpus = MakeCorpus(target);
  double gb = static_cast<double>(corpus.size()) / 1e9;

  // Q0-style selection: project one shallow field, skip the big
  // "results" arrays — the SkipValue-heavy shape the index targets.
  std::vector<PathStep> skip_heavy = {PathStep::Key("metadata"),
                                      PathStep::Key("count")};
  // Materialize-heavy: touch every measurement date.
  std::vector<PathStep> touch_all = {PathStep::Key("results"),
                                     PathStep::KeysOrMembers(),
                                     PathStep::Key("date")};

  PrintTableHeader("Stage-1 index build", {"kernel", "GB/s"});
  std::vector<std::pair<std::string, double>> build;
  for (SimdLevel level : jpar::SupportedSimdLevels()) {
    double gbps = IndexBuildGbps(corpus, level);
    build.push_back({SimdLevelName(level), gbps});
    PrintTableRow({SimdLevelName(level), std::to_string(gbps)});
  }

  PrintTableHeader("Projected scan (skip-heavy: metadata.count)",
                   {"mode", "GB/s"});
  double scan_scalar = ScanGbps(corpus, skip_heavy, ScanMode::kScalar);
  double scan_indexed = ScanGbps(corpus, skip_heavy, ScanMode::kIndexed);
  PrintTableRow({"scalar", std::to_string(scan_scalar)});
  PrintTableRow({"indexed", std::to_string(scan_indexed)});

  PrintTableHeader("Projected scan (touch-all: results()date)",
                   {"mode", "GB/s"});
  double touch_scalar = ScanGbps(corpus, touch_all, ScanMode::kScalar);
  double touch_indexed = ScanGbps(corpus, touch_all, ScanMode::kIndexed);
  PrintTableRow({"scalar", std::to_string(touch_scalar)});
  PrintTableRow({"indexed", std::to_string(touch_indexed)});

  // Morsel scaling over one large "file" (the whole corpus), 256 KiB
  // morsels so even the scaled-down corpus yields a few dozen tasks.
  std::vector<std::pair<size_t, size_t>> morsels =
      SplitMorsels(corpus, 256 * 1024);
  std::vector<double> task_times;
  task_times.reserve(morsels.size());
  for (const auto& [begin, end] : morsels) {
    double best = ScanRange(corpus, begin, end, skip_heavy);
    for (int rep = 1; rep < Repeats(); ++rep) {
      best = std::min(best, ScanRange(corpus, begin, end, skip_heavy));
    }
    task_times.push_back(best);
  }
  const int kThreads[] = {1, 2, 4, 8};
  double base = LptMakespan(task_times, 1);
  PrintTableHeader("Morsel scaling (modeled LPT makespan)",
                   {"threads", "GB/s", "speedup", "real wall s"});
  std::vector<double> morsel_gbps, morsel_speedup, morsel_real;
  for (int t : kThreads) {
    double makespan = LptMakespan(task_times, t);
    double gbps = gb / makespan;
    double real = ThreadedWallClock(corpus, morsels, skip_heavy, t);
    morsel_gbps.push_back(gbps);
    morsel_speedup.push_back(base / makespan);
    morsel_real.push_back(real);
    PrintTableRow({std::to_string(t), std::to_string(gbps),
                   std::to_string(base / makespan), std::to_string(real)});
  }

  FILE* out = std::fopen("BENCH_scan_throughput.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_scan_throughput.json\n");
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"corpus_bytes\": %zu,\n", corpus.size());
  std::fprintf(out, "  \"active_kernel\": \"%s\",\n",
               SimdLevelName(jpar::ActiveSimdLevel()));
  std::fprintf(out, "  \"index_build_gbps\": {");
  for (size_t i = 0; i < build.size(); ++i) {
    std::fprintf(out, "%s\"%s\": %.3f", i ? ", " : "",
                 build[i].first.c_str(), build[i].second);
  }
  std::fprintf(out, "},\n");
  std::fprintf(out,
               "  \"scan_skip_heavy_gbps\": {\"scalar\": %.3f, "
               "\"indexed\": %.3f},\n",
               scan_scalar, scan_indexed);
  std::fprintf(out,
               "  \"scan_touch_all_gbps\": {\"scalar\": %.3f, "
               "\"indexed\": %.3f},\n",
               touch_scalar, touch_indexed);
  std::fprintf(out, "  \"morsel_scaling\": {\n    \"threads\": [1, 2, 4, 8],\n");
  std::fprintf(out, "    \"modeled_gbps\": [");
  for (size_t i = 0; i < morsel_gbps.size(); ++i) {
    std::fprintf(out, "%s%.3f", i ? ", " : "", morsel_gbps[i]);
  }
  std::fprintf(out, "],\n    \"modeled_speedup\": [");
  for (size_t i = 0; i < morsel_speedup.size(); ++i) {
    std::fprintf(out, "%s%.3f", i ? ", " : "", morsel_speedup[i]);
  }
  std::fprintf(out, "],\n    \"real_wall_seconds\": [");
  for (size_t i = 0; i < morsel_real.size(); ++i) {
    std::fprintf(out, "%s%.4f", i ? ", " : "", morsel_real[i]);
  }
  std::fprintf(out, "]\n  }\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_scan_throughput.json\n");
}

}  // namespace
}  // namespace jparbench

int main(int argc, char** argv) {
  jparbench::InitBenchArgs(argc, argv);
  jparbench::Run();
  return 0;
}
