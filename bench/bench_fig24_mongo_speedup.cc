// Figure 24: VXQuery vs MongoDB cluster speed-up on Q0b and Q2
// (803 GB-scaled). Expected shapes (paper): MongoDB's compressed,
// pre-parsed storage wins the pure selection query (Q0b) — VXQuery
// stays comparable thanks to the scan-projection rules; VXQuery wins
// the self-join (Q2), where MongoDB needs the unwind+project
// workaround to stay under its 16 MB document limit.

#include "bench/bench_common.h"
#include "bench/sharded_docstore.h"

namespace jparbench {
namespace {

std::vector<std::string> UnwrappedDocs(uint64_t base_bytes, int mpa) {
  jpar::SensorDataSpec spec;
  spec.measurements_per_array = mpa;
  uint64_t per_record = 40 + static_cast<uint64_t>(mpa) * 105;
  spec.records_per_file = static_cast<int>(512 * 1024 / per_record) + 1;
  spec.num_stations = 64;
  spec = jpar::SpecForBytes(
      spec,
      static_cast<uint64_t>(static_cast<double>(base_bytes) * ScaleFactor()));
  std::vector<std::string> docs;
  for (int f = 0; f < spec.num_files; ++f) {
    for (std::string& d : jpar::GenerateUnwrappedDocuments(spec, f)) {
      docs.push_back(std::move(d));
    }
  }
  return docs;
}

void Run() {
  const uint64_t base_bytes = 36ull * 1024 * 1024;
  const Collection& wrapped = SensorData(base_bytes);
  // MongoDB's best single-node configuration (30 measurements/array).
  std::vector<std::string> docs = UnwrappedDocs(base_bytes, 30);

  PrintTableHeader("Figure 24: speed-up, VXQuery vs MongoDB — Q0b",
                   {"nodes", "VXQuery", "MongoDB"});
  for (int nodes = 1; nodes <= 9; ++nodes) {
    Engine vx = MakeSensorEngine(wrapped, RuleOptions::All(), nodes * 4, 4);
    Measurement vxm = RunQuery(vx, kQ0b);

    ShardedDocStore mongo(nodes);
    CheckOk(mongo.Load(docs).status(), "mongo load");
    auto ms = mongo.RunQ0bMs(nullptr);
    CheckOk(ms.status(), "mongo q0b");
    PrintTableRow({std::to_string(nodes), FormatMs(vxm.makespan_ms),
                   FormatMs(*ms)});
  }

  PrintTableHeader("Figure 24: speed-up, VXQuery vs MongoDB — Q2",
                   {"nodes", "VXQuery", "MongoDB"});
  for (int nodes = 1; nodes <= 9; ++nodes) {
    Engine vx = MakeSensorEngine(wrapped, RuleOptions::All(), nodes * 4, 4);
    Measurement vxm = RunQuery(vx, kQ2);

    ShardedDocStore mongo(nodes);
    CheckOk(mongo.Load(docs).status(), "mongo load");
    double q2 = 0;
    auto ms = mongo.RunQ2Ms(&q2);
    CheckOk(ms.status(), "mongo q2");
    PrintTableRow({std::to_string(nodes), FormatMs(vxm.makespan_ms),
                   FormatMs(*ms)});
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
