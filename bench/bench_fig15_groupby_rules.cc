// Figure 15: execution time before and after the group-by rules, with
// path + pipelining rules already enabled (paper §5.3). Q0/Q0b/Q2 are
// unaffected (no group-by); Q1 and Q1b improve via the pushed-down
// incremental COUNT.

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const Collection& data = SensorData(4ull * 1024 * 1024);

  RuleOptions before = RuleOptions::None();
  before.path_rules = true;
  before.pipelining_rules = true;

  RuleOptions after = before;
  after.groupby_rules = true;
  after.two_step_aggregation = true;

  PrintTableHeader(
      "Figure 15: before/after group-by rules (path+pipelining enabled)",
      {"query", "before", "after", "speedup"});
  for (const NamedQuery& q : kAllQueries) {
    Engine eb = MakeSensorEngine(data, before, 1);
    Engine ea = MakeSensorEngine(data, after, 1);
    Measurement mb = RunQuery(eb, q.text);
    Measurement ma = RunQuery(ea, q.text);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  mb.real_ms / (ma.real_ms > 0 ? ma.real_ms : 1));
    PrintTableRow({q.name, FormatMs(mb.real_ms), FormatMs(ma.real_ms),
                   speedup});
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
