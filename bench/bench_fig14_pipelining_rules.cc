// Figure 14: execution time (log scale in the paper) before and after
// the pipelining rules, with path rules already enabled (paper §5.3).
// The paper reports ~two orders of magnitude improvement; the largest
// serialized tuple shrinking from whole-collection scale to one object
// is the mechanism, so we print it too.

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const Collection& data = SensorData(4ull * 1024 * 1024);

  RuleOptions before = RuleOptions::None();
  before.path_rules = true;

  RuleOptions after = before;
  after.pipelining_rules = true;

  PrintTableHeader(
      "Figure 14: before/after pipelining rules (path rules enabled)",
      {"query", "before", "after", "speedup", "peak-mem(before)",
       "peak-mem(after)"});
  for (const NamedQuery& q : kAllQueries) {
    Engine eb = MakeSensorEngine(data, before, 1);
    Engine ea = MakeSensorEngine(data, after, 1);
    Measurement mb = RunQuery(eb, q.text);
    Measurement ma = RunQuery(ea, q.text);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  mb.real_ms / (ma.real_ms > 0 ? ma.real_ms : 1));
    PrintTableRow({q.name, FormatMs(mb.real_ms), FormatMs(ma.real_ms),
                   speedup, FormatBytes(mb.peak_bytes),
                   FormatBytes(ma.peak_bytes)});
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
