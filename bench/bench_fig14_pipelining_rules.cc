// Figure 14: execution time (log scale in the paper) before and after
// the pipelining rules, with path rules already enabled (paper §5.3).
// The paper reports ~two orders of magnitude improvement; the largest
// serialized tuple shrinking from whole-collection scale to one object
// is the mechanism, so we print it too.

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const Collection& data = SensorData(4ull * 1024 * 1024);

  RuleOptions before = RuleOptions::None();
  before.path_rules = true;

  RuleOptions after = before;
  after.pipelining_rules = true;

  PrintTableHeader(
      "Figure 14: before/after pipelining rules (path rules enabled)",
      {"query", "before", "after", "speedup", "peak-mem(before)",
       "peak-mem(after)"});
  for (const NamedQuery& q : kAllQueries) {
    Engine eb = MakeSensorEngine(data, before, 1);
    Engine ea = MakeSensorEngine(data, after, 1);
    Measurement mb = RunQuery(eb, q.text);
    Measurement ma = RunQuery(ea, q.text);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  mb.real_ms / (ma.real_ms > 0 ? ma.real_ms : 1));
    PrintTableRow({q.name, FormatMs(mb.real_ms), FormatMs(ma.real_ms),
                   speedup, FormatBytes(mb.peak_bytes),
                   FormatBytes(ma.peak_bytes)});
  }

  // Fully pipelined plans, legacy tuple-at-a-time tree interpretation
  // vs. batch-at-a-time compiled bytecode (DESIGN.md §13). These are
  // the post-rewrite plans real runs use, so this is the end-to-end
  // vectorization win; ratios land in BENCH_expr_bytecode.json.
  PrintTableHeader(
      "Figure 14 queries: expression tree vs. compiled bytecode",
      {"query", "tree", "bytecode", "speedup"});
  std::string json = "{";
  for (const NamedQuery& q : kAllQueries) {
    Engine et = MakeSensorEngine(data, after, 1, 4, ExprMode::kTree);
    Engine eb2 = MakeSensorEngine(data, after, 1, 4, ExprMode::kBytecode);
    Measurement mt = RunQuery(et, q.text);
    Measurement mb2 = RunQuery(eb2, q.text);
    double ratio = mt.real_ms / (mb2.real_ms > 0 ? mb2.real_ms : 1);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", ratio);
    PrintTableRow({q.name, FormatMs(mt.real_ms), FormatMs(mb2.real_ms),
                   speedup});
    char entry[160];
    std::snprintf(entry, sizeof(entry),
                  "%s\"%s\": {\"tree_ms\": %.3f, \"bytecode_ms\": %.3f, "
                  "\"speedup\": %.3f}",
                  json.size() > 1 ? ", " : "", q.name, mt.real_ms,
                  mb2.real_ms, ratio);
    json += entry;
  }
  json += "}";
  UpdateBenchJsonSection("BENCH_expr_bytecode.json",
                         "fig14_pipelining_rules", json);
  std::printf("\nwrote fig14_pipelining_rules into BENCH_expr_bytecode.json\n");
}

}  // namespace
}  // namespace jparbench

int main(int argc, char** argv) {
  jparbench::InitBenchArgs(argc, argv);
  jparbench::Run();
  return 0;
}
