// Service-tier throughput: N client threads submit the paper's five
// queries through QueryService, with and without the plan cache, and
// the admission/cache counters are printed. This measures what the
// single-shot figure benches cannot: amortization of compilation
// across repeated queries and the cost of the session/admission path
// under concurrency. Also measures the overhead of the cooperative
// cancellation/deadline checks (expected < 2% on a Q1-style group-by;
// the ExecOptions::cooperative_checks=false knob exists only for this
// comparison). Scaled by JPAR_BENCH_SCALE like every bench.

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "runtime/query_context.h"
#include "service/query_service.h"

namespace jparbench {
namespace {

using jpar::CancellationToken;
using jpar::CompiledQuery;
using jpar::ExecOptions;
using jpar::QueryContext;
using jpar::QueryService;
using jpar::QueryTicket;
using jpar::ServiceMetrics;
using jpar::ServiceOptions;
using jpar::Session;

constexpr int kClientThreads = 4;
constexpr int kQueriesPerClient = 20;

struct RunResult {
  double wall_ms = 0;
  double qps = 0;
  ServiceMetrics metrics;
};

RunResult RunWorkload(const Collection& data, size_t plan_cache_capacity) {
  ServiceOptions options;
  options.worker_threads = 4;
  options.plan_cache_capacity = plan_cache_capacity;
  options.max_queue_depth = kClientThreads * kQueriesPerClient;
  options.engine.exec.partitions = 2;
  options.engine.exec.network_gbps = 10.0;
  QueryService service(options);
  service.catalog()->RegisterCollection("/sensors", data);

  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&service, c] {
      std::shared_ptr<Session> session = service.CreateSession();
      std::vector<QueryTicket> tickets;
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const NamedQuery& q =
            kAllQueries[static_cast<size_t>(c + i) %
                        (sizeof(kAllQueries) / sizeof(kAllQueries[0]))];
        tickets.push_back(session->Submit(q.text));
      }
      for (QueryTicket& t : tickets) {
        CheckOk(t.status(), "service query");
      }
    });
  }
  for (std::thread& t : clients) t.join();

  RunResult r;
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  r.qps = static_cast<double>(kClientThreads * kQueriesPerClient) /
          (r.wall_ms / 1000.0);
  r.metrics = service.Metrics();
  return r;
}

// Cost of the per-batch lifecycle checks on a Q1-style group-by: the
// same compiled plan executed with cooperative_checks on (a live
// cancellation token plus an armed deadline, so every check does its
// full work: atomic load + clock read) and off. The check interval
// (Executor::kCheckIntervalTuples) is sized so the delta stays below
// 2%.
void RunCheckOverhead(const Collection& data) {
  EngineOptions options;
  options.exec.network_gbps = 10.0;
  Engine engine(options);
  engine.catalog()->RegisterCollection("/sensors", data);
  auto compiled = engine.Compile(kQ1);
  CheckOk(compiled.status(), "compile Q1");

  auto time_runs = [&](bool checks) {
    ExecOptions exec = options.exec;
    exec.cooperative_checks = checks;
    QueryContext ctx;
    ctx.set_cancellation(std::make_shared<CancellationToken>());
    ctx.set_deadline_after_ms(10 * 60 * 1000.0);  // armed, never fires
    // Warmup, then timed repeats.
    CheckOk(engine.Execute(*compiled, exec, &ctx).status(), "warmup Q1");
    int repeats = Repeats() * 3;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < repeats; ++i) {
      CheckOk(engine.Execute(*compiled, exec, &ctx).status(), "timed Q1");
    }
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
               .count() /
           repeats;
  };

  double off_ms = time_runs(false);
  double on_ms = time_runs(true);
  double overhead_pct = off_ms > 0 ? (on_ms - off_ms) / off_ms * 100.0 : 0.0;

  PrintTableHeader(
      "Cooperative check overhead: Q1 group-by, checks every 256 tuples",
      {"lifecycle checks", "avg run", "overhead"});
  PrintTableRow({"off", FormatMs(off_ms), "-"});
  char pct[32];
  std::snprintf(pct, sizeof(pct), "%+.2f%%", overhead_pct);
  PrintTableRow({"on (token+deadline)", FormatMs(on_ms), pct});
}

void Run() {
  const Collection& data = SensorData(1024 * 1024);

  PrintTableHeader(
      "Service throughput: 4 client threads x 20 queries (Q0..Q2 mix)",
      {"plan cache", "wall", "queries/s", "cache hits", "misses",
       "queued peak"});
  for (size_t capacity : {size_t{0}, size_t{128}}) {
    RunResult r = RunWorkload(data, capacity);
    PrintTableRow({capacity == 0 ? "off" : "on (128)", FormatMs(r.wall_ms),
                   std::to_string(static_cast<int>(r.qps)),
                   std::to_string(r.metrics.plan_cache.hits),
                   std::to_string(r.metrics.plan_cache.misses),
                   std::to_string(r.metrics.admission.queued_peak)});
  }

  RunResult full = RunWorkload(data, 128);
  std::printf("\nFull metrics snapshot of the cached run:\n%s",
              full.metrics.ToString().c_str());

  std::printf("\n");
  RunCheckOverhead(data);
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
