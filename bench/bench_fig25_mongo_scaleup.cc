// Figure 25: VXQuery vs MongoDB cluster scale-up on Q0b and Q2
// (88 GB-scaled per node). Both systems should stay roughly flat;
// MongoDB below VXQuery on the selection, above it on the join.

#include "bench/bench_common.h"
#include "bench/sharded_docstore.h"

namespace jparbench {
namespace {

std::vector<std::string> UnwrappedDocs(uint64_t bytes, uint64_t seed) {
  jpar::SensorDataSpec spec;
  spec.measurements_per_array = 30;
  spec.records_per_file = static_cast<int>(512 * 1024 / (40 + 30 * 105)) + 1;
  spec.num_stations = 64;
  spec.seed = seed;
  spec = jpar::SpecForBytes(
      spec, static_cast<uint64_t>(static_cast<double>(bytes) * ScaleFactor()));
  std::vector<std::string> docs;
  for (int f = 0; f < spec.num_files; ++f) {
    for (std::string& d : jpar::GenerateUnwrappedDocuments(spec, f)) {
      docs.push_back(std::move(d));
    }
  }
  return docs;
}

void Run() {
  const uint64_t per_node = 4ull * 1024 * 1024;
  for (const NamedQuery& q :
       {NamedQuery{"Q0b", kQ0b}, NamedQuery{"Q2", kQ2}}) {
    PrintTableHeader(
        std::string("Figure 25: scale-up, VXQuery vs MongoDB — ") + q.name,
        {"nodes", "VXQuery", "MongoDB"});
    for (int nodes = 1; nodes <= 9; ++nodes) {
      uint64_t bytes = per_node * static_cast<uint64_t>(nodes);
      const Collection& wrapped = SensorData(bytes);
      Engine vx = MakeSensorEngine(wrapped, RuleOptions::All(), nodes * 4, 4);
      Measurement vxm = RunQuery(vx, q.text);

      ShardedDocStore mongo(nodes);
      CheckOk(mongo.Load(UnwrappedDocs(bytes, 42)).status(), "mongo load");
      double mongo_ms = 0;
      if (q.text == kQ0b) {
        auto ms = mongo.RunQ0bMs(nullptr);
        CheckOk(ms.status(), "mongo q0b");
        mongo_ms = *ms;
      } else {
        double r = 0;
        auto ms = mongo.RunQ2Ms(&r);
        CheckOk(ms.status(), "mongo q2");
        mongo_ms = *ms;
      }
      PrintTableRow({std::to_string(nodes), FormatMs(vxm.makespan_ms),
                     FormatMs(mongo_ms)});
    }
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
