#include "bench/sharded_docstore.h"

#include <chrono>
#include <map>

#include "bench/baseline_queries.h"

namespace jparbench {

namespace {
using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}
}  // namespace

jpar::Result<jpar::LoadStats> ShardedDocStore::Load(
    const std::vector<std::string>& docs) {
  std::vector<std::vector<std::string>> per_shard(shards_.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    per_shard[i % shards_.size()].push_back(docs[i]);
  }
  jpar::LoadStats total;
  double max_ms = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    JPAR_ASSIGN_OR_RETURN(jpar::LoadStats stats,
                          shards_[s].Load(per_shard[s]));
    total.input_bytes += stats.input_bytes;
    total.stored_bytes += stats.stored_bytes;
    total.documents += stats.documents;
    if (stats.load_ms > max_ms) max_ms = stats.load_ms;
  }
  total.load_ms = max_ms;  // shards load in parallel
  return total;
}

jpar::Result<double> ShardedDocStore::RunQ0bMs(uint64_t* rows) const {
  double max_ms = 0;
  uint64_t total_rows = 0;
  for (const jpar::DocStore& shard : shards_) {
    auto start = Clock::now();
    JPAR_ASSIGN_OR_RETURN(std::vector<std::string> dates,
                          DocStoreQ0b(shard));
    total_rows += dates.size();
    double ms = ElapsedMs(start);
    if (ms > max_ms) max_ms = ms;
  }
  if (rows != nullptr) *rows = total_rows;
  return max_ms;
}

jpar::Result<double> ShardedDocStore::RunQ2Ms(double* result) const {
  // Phase 1 (parallel): per-shard unwind + project.
  double max_unwind_ms = 0;
  std::vector<std::vector<jpar::Item>> per_shard;
  per_shard.reserve(shards_.size());
  for (const jpar::DocStore& shard : shards_) {
    auto start = Clock::now();
    JPAR_ASSIGN_OR_RETURN(
        std::vector<jpar::Item> ms,
        shard.UnwindProject("results",
                            {"station", "date", "dataType", "value"}));
    double elapsed = ElapsedMs(start);
    if (elapsed > max_unwind_ms) max_unwind_ms = elapsed;
    per_shard.push_back(std::move(ms));
  }

  // Phase 2 (central): TMIN/TMAX join over all projected measurements.
  auto start = Clock::now();
  std::map<std::pair<std::string, std::string>, std::vector<int64_t>> tmin;
  for (const auto& shard_items : per_shard) {
    for (const jpar::Item& m : shard_items) {
      auto type = m.GetField("dataType");
      if (!type.has_value() || type->string_value() != "TMIN") continue;
      tmin[{m.GetField("station")->string_value(),
            m.GetField("date")->string_value()}]
          .push_back(m.GetField("value")->int64_value());
    }
  }
  double sum = 0;
  int64_t count = 0;
  for (const auto& shard_items : per_shard) {
    for (const jpar::Item& m : shard_items) {
      auto type = m.GetField("dataType");
      if (!type.has_value() || type->string_value() != "TMAX") continue;
      auto it = tmin.find({m.GetField("station")->string_value(),
                           m.GetField("date")->string_value()});
      if (it == tmin.end()) continue;
      int64_t mx = m.GetField("value")->int64_value();
      for (int64_t mn : it->second) {
        sum += static_cast<double>(mx - mn);
        ++count;
      }
    }
  }
  if (result != nullptr) {
    *result = count > 0 ? (sum / static_cast<double>(count)) / 10.0 : 0.0;
  }
  return max_unwind_ms + ElapsedMs(start);
}

uint64_t ShardedDocStore::stored_bytes() const {
  uint64_t total = 0;
  for (const jpar::DocStore& shard : shards_) total += shard.stored_bytes();
  return total;
}

}  // namespace jparbench
