// Table 2: Spark SQL loading time for 400/800/1000 MB (scaled
// 4/8/10 MB x JPAR_BENCH_SCALE). Loading grows super-linearly in the
// paper (6.3s/15s/40s); here it is the measured parse+materialize cost.

#include "baselines/memtable.h"
#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  PrintTableHeader("Table 2: Spark SQL loading time",
                   {"size", "load", "rows", "memory"});
  for (uint64_t mb : {4, 8, 10}) {
    const Collection& data = SensorData(mb * 1024 * 1024);
    jpar::MemTable spark;
    auto load = spark.Load(data);
    CheckOk(load.status(), "spark load");
    char size[32];
    std::snprintf(size, sizeof(size), "%llux100MB",
                  static_cast<unsigned long long>(mb));
    PrintTableRow({size, FormatMs(load->load_ms),
                   std::to_string(load->documents),
                   FormatBytes(spark.memory_bytes())});
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
