// Figure 18: (a) Q0b execution time and (b) space consumption for
// varying measurements-per-array (30/22/15/7/1), comparing VXQuery
// (this engine), MongoDB (DocStore), AsterixDB external, and
// AsterixDB(load) (paper §5.3, 88 GB; scaled 24 MB x JPAR_BENCH_SCALE).
//
// Expected shapes (paper):
//  * VXQuery: flat across document sizes, no extra space.
//  * MongoDB: fastest queries and least space at 30/array (compression
//    works best on large documents); both degrade as documents shrink.
//  * AsterixDB variants: flat space; slower queries than VXQuery (no
//    pipelining pushdown); (load) beats external (no JSON parsing).

#include <chrono>

#include "baselines/asterix_like.h"
#include "baselines/docstore.h"
#include "bench/baseline_queries.h"
#include "bench/bench_common.h"

namespace jparbench {
namespace {

using Clock = std::chrono::steady_clock;

// Q0b over unwrapped documents (no "root" wrapper).
constexpr const char* kQ0bUnwrapped = R"(
  for $r in collection("/sensors")("results")()("date")
  let $datetime := dateTime(data($r))
  where year-from-dateTime($datetime) ge 2003
    and month-from-dateTime($datetime) eq 12
    and day-from-dateTime($datetime) eq 25
  return $r)";

double MeasureMs(const std::function<void()>& fn) {
  double total = 0;
  for (int i = 0; i < Repeats(); ++i) {
    auto start = Clock::now();
    fn();
    total +=
        std::chrono::duration<double, std::milli>(Clock::now() - start)
            .count();
  }
  return total / Repeats();
}

void Run() {
  const uint64_t base_bytes = 24ull * 1024 * 1024;
  PrintTableHeader(
      "Figure 18a: Q0b time vs measurements/array (scaled 88GB)",
      {"meas/array", "VXQuery", "MongoDB", "AsterixDB", "Asterix(load)"});
  std::vector<std::vector<std::string>> space_rows;

  for (int mpa : {30, 22, 15, 7, 1}) {
    const Collection& wrapped = SensorData(base_bytes, mpa);
    uint64_t input_bytes = *wrapped.TotalBytes();

    // Unwrapped documents for the document-store systems (the paper
    // unwraps "root" so MongoDB sees many small documents).
    jpar::SensorDataSpec spec;
    spec.measurements_per_array = mpa;
    uint64_t per_record = 40 + static_cast<uint64_t>(mpa) * 105;
    spec.records_per_file = static_cast<int>(512 * 1024 / per_record) + 1;
    spec = jpar::SpecForBytes(
        spec, static_cast<uint64_t>(static_cast<double>(base_bytes) *
                                    ScaleFactor()));
    std::vector<std::string> docs;
    Collection unwrapped_files;
    for (int f = 0; f < spec.num_files; ++f) {
      for (std::string& d : jpar::GenerateUnwrappedDocuments(spec, f)) {
        unwrapped_files.files.push_back(jpar::JsonFile::FromText(d));
        docs.push_back(std::move(d));
      }
    }

    // --- VXQuery: streams the wrapped files directly. -----------------
    Engine vx = MakeSensorEngine(wrapped, RuleOptions::All(), 4);
    Measurement vxm = RunQuery(vx, kQ0b);

    // --- MongoDB model: load, then query binary documents. ------------
    jpar::DocStore mongo;
    auto mongo_load = mongo.Load(docs);
    CheckOk(mongo_load.status(), "mongo load");
    double mongo_ms = MeasureMs([&] {
      auto r = DocStoreQ0b(mongo);
      CheckOk(r.status(), "mongo q0b");
    });

    // --- AsterixDB external / load. ------------------------------------
    jpar::AsterixLikeOptions aopts;
    aopts.exec.partitions = 4;
    jpar::AsterixLike asterix_ext(aopts);
    CheckOk(asterix_ext.Register("/sensors", unwrapped_files).status(),
            "asterix register");
    double ext_ms = MeasureMs([&] {
      auto r = asterix_ext.Run(kQ0bUnwrapped);
      CheckOk(r.status(), "asterix q0b");
    });

    aopts.preload = true;
    jpar::AsterixLike asterix_load(aopts);
    auto aload = asterix_load.Register("/sensors", unwrapped_files);
    CheckOk(aload.status(), "asterix load");
    double load_ms = MeasureMs([&] {
      auto r = asterix_load.Run(kQ0bUnwrapped);
      CheckOk(r.status(), "asterix(load) q0b");
    });

    PrintTableRow({std::to_string(mpa), FormatMs(vxm.makespan_ms),
                   FormatMs(mongo_ms), FormatMs(ext_ms), FormatMs(load_ms)});
    space_rows.push_back({std::to_string(mpa), FormatBytes(input_bytes),
                          FormatBytes(mongo.stored_bytes()),
                          FormatBytes(input_bytes),
                          FormatBytes(aload->stored_bytes)});
  }

  PrintTableHeader(
      "Figure 18b: space consumption vs measurements/array",
      {"meas/array", "VXQuery", "MongoDB", "AsterixDB", "Asterix(load)"});
  for (const auto& row : space_rows) PrintTableRow(row);
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
