// Ablation (beyond the paper): exchange frame size vs Q1 performance.
// The pipelining rules exist so tuples fit Hyracks' "dataflow frame
// size restriction" (paper §4.2); this sweep shows the exchange-layer
// behaviour across frame sizes, including the oversized-frame count
// when tuples do not fit.

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const Collection& data = SensorData(8ull * 1024 * 1024);
  PrintTableHeader("Ablation: frame size vs Q1 (4 partitions)",
                   {"frame", "time", "frames", "oversized"});
  for (size_t frame_bytes :
       {size_t{1} * 1024, size_t{4} * 1024, size_t{32} * 1024,
        size_t{128} * 1024, size_t{1024} * 1024}) {
    EngineOptions options;
    options.exec.partitions = 4;
    options.exec.frame_bytes = frame_bytes;
    Engine engine(options);
    engine.catalog()->RegisterCollection("/sensors", data);
    auto compiled = engine.Compile(kQ1);
    CheckOk(compiled.status(), "compile");
    double ms = 0;
    uint64_t frames = 0, oversized = 0;
    for (int i = 0; i < Repeats(); ++i) {
      auto result = engine.Execute(*compiled);
      CheckOk(result.status(), "execute");
      ms += result->stats.real_ms;
      frames = oversized = 0;
      for (const jpar::StageStats& s : result->stats.stages) {
        frames += s.exchange_frames;
        oversized += s.oversized_frames;
      }
    }
    PrintTableRow({FormatBytes(frame_bytes), FormatMs(ms / Repeats()),
                   std::to_string(frames), std::to_string(oversized)});
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
