// Figure 13: execution time for Q0..Q2 before and after the
// path-expression rules (paper §5.3, 400 MB collection, single
// partition). Scaled dataset: 4 MB x JPAR_BENCH_SCALE.

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const Collection& data = SensorData(4ull * 1024 * 1024);

  RuleOptions before = RuleOptions::None();
  RuleOptions after = RuleOptions::None();
  after.path_rules = true;

  PrintTableHeader(
      "Figure 13: before/after path expression rules (single partition)",
      {"query", "before", "after", "speedup", "buffer(before)",
       "buffer(after)"});
  for (const NamedQuery& q : kAllQueries) {
    Engine eb = MakeSensorEngine(data, before, 1);
    Engine ea = MakeSensorEngine(data, after, 1);
    Measurement mb = RunQuery(eb, q.text);
    Measurement ma = RunQuery(ea, q.text);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  mb.real_ms / (ma.real_ms > 0 ? ma.real_ms : 1));
    PrintTableRow({q.name, FormatMs(mb.real_ms), FormatMs(ma.real_ms),
                   speedup, FormatBytes(mb.pipeline_bytes),
                   FormatBytes(ma.pipeline_bytes)});
  }
  std::printf(
      "\n(buffer = bytes materialized between operators; the paper's\n"
      " stated mechanism: the rules avoid large sequences in buffers.)\n");
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
