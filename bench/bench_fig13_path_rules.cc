// Figure 13: execution time for Q0..Q2 before and after the
// path-expression rules (paper §5.3, 400 MB collection, single
// partition). Scaled dataset: 4 MB x JPAR_BENCH_SCALE.

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const Collection& data = SensorData(4ull * 1024 * 1024);

  RuleOptions before = RuleOptions::None();
  RuleOptions after = RuleOptions::None();
  after.path_rules = true;

  PrintTableHeader(
      "Figure 13: before/after path expression rules (single partition)",
      {"query", "before", "after", "speedup", "buffer(before)",
       "buffer(after)"});
  for (const NamedQuery& q : kAllQueries) {
    Engine eb = MakeSensorEngine(data, before, 1);
    Engine ea = MakeSensorEngine(data, after, 1);
    Measurement mb = RunQuery(eb, q.text);
    Measurement ma = RunQuery(ea, q.text);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  mb.real_ms / (ma.real_ms > 0 ? ma.real_ms : 1));
    PrintTableRow({q.name, FormatMs(mb.real_ms), FormatMs(ma.real_ms),
                   speedup, FormatBytes(mb.pipeline_bytes),
                   FormatBytes(ma.pipeline_bytes)});
  }
  std::printf(
      "\n(buffer = bytes materialized between operators; the paper's\n"
      " stated mechanism: the rules avoid large sequences in buffers.)\n");

  // Legacy tuple-at-a-time tree interpretation vs. batch-at-a-time
  // compiled bytecode (DESIGN.md §13) on the same queries. Pipelining
  // rules are enabled here too: vectorization engages on DATASCAN
  // pipelines, and path-rule-only plans read the collection as one
  // scalar sequence (no per-tuple stream to batch). Selection- and
  // projection-heavy queries are where it pays; the per-query ratios
  // land in BENCH_expr_bytecode.json.
  RuleOptions piped = after;
  piped.pipelining_rules = true;
  PrintTableHeader(
      "Figure 13 queries: expression tree vs. compiled bytecode",
      {"query", "tree", "bytecode", "speedup"});
  std::string json = "{";
  for (const NamedQuery& q : kAllQueries) {
    Engine et = MakeSensorEngine(data, piped, 1, 4, ExprMode::kTree);
    Engine eb2 = MakeSensorEngine(data, piped, 1, 4, ExprMode::kBytecode);
    Measurement mt = RunQuery(et, q.text);
    Measurement mb2 = RunQuery(eb2, q.text);
    double ratio = mt.real_ms / (mb2.real_ms > 0 ? mb2.real_ms : 1);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx", ratio);
    PrintTableRow({q.name, FormatMs(mt.real_ms), FormatMs(mb2.real_ms),
                   speedup});
    char entry[160];
    std::snprintf(entry, sizeof(entry),
                  "%s\"%s\": {\"tree_ms\": %.3f, \"bytecode_ms\": %.3f, "
                  "\"speedup\": %.3f}",
                  json.size() > 1 ? ", " : "", q.name, mt.real_ms,
                  mb2.real_ms, ratio);
    json += entry;
  }
  json += "}";
  UpdateBenchJsonSection("BENCH_expr_bytecode.json", "fig13_path_rules",
                         json);
  std::printf("\nwrote fig13_path_rules into BENCH_expr_bytecode.json\n");
}

}  // namespace
}  // namespace jparbench

int main(int argc, char** argv) {
  jparbench::InitBenchArgs(argc, argv);
  jparbench::Run();
  return 0;
}
