// Figure 20: cluster speed-up for all queries over 1..9 nodes on a
// fixed dataset (paper: 803 GB, 4 partitions/node; scaled: 36 MB x
// JPAR_BENCH_SCALE). The reported time is the simulated-parallel
// makespan (partition tasks measured individually, LPT-scheduled onto
// the modeled cores, plus exchange and modeled network time — see
// DESIGN.md). Expected shape: time ~ 1/nodes for every query; Q2 the
// slowest (self-join reads the data twice).

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const Collection& data = SensorData(36ull * 1024 * 1024);

  std::vector<std::string> header = {"query"};
  for (int n = 1; n <= 9; ++n) {
    header.push_back(std::to_string(n) + (n == 1 ? " node" : " nodes"));
  }
  PrintTableHeader("Figure 20: cluster speed-up (803GB-scaled, makespan)",
                   header);
  for (const NamedQuery& q : kAllQueries) {
    std::vector<std::string> row = {q.name};
    for (int nodes = 1; nodes <= 9; ++nodes) {
      Engine engine =
          MakeSensorEngine(data, RuleOptions::All(), nodes * 4, 4);
      Measurement m = RunQuery(engine, q.text);
      row.push_back(FormatMs(m.makespan_ms));
    }
    PrintTableRow(row);
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
