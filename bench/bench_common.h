#ifndef JPAR_BENCH_BENCH_COMMON_H_
#define JPAR_BENCH_BENCH_COMMON_H_

// Shared infrastructure for the figure/table reproduction benches.
//
// Scaling: the paper's datasets (400 MB .. 803 GB) are scaled down so
// every bench completes in seconds on one core; the quantities compared
// (ratios between systems/configurations, speed-up and scale-up curves)
// are scale-free. Set JPAR_BENCH_SCALE (a float, default 1.0) to grow
// or shrink all datasets proportionally.

#include <cstdint>
#include <string>
#include <vector>

#include "bench/queries.h"
#include "core/engine.h"
#include "data/sensor_generator.h"

namespace jparbench {

using jpar::Collection;
using jpar::Engine;
using jpar::EngineOptions;
using jpar::ExprMode;
using jpar::QueryOutput;
using jpar::RuleOptions;
using jpar::SensorDataSpec;

/// Parses bench command-line flags, overriding the corresponding env
/// vars: `--scale X` / `--scale=X` (JPAR_BENCH_SCALE) and `--repeats N`
/// (JPAR_BENCH_REPEATS). Call first in main; unknown flags abort with a
/// usage message so typos don't silently run at default scale.
void InitBenchArgs(int argc, char** argv);

/// Global dataset scale factor from JPAR_BENCH_SCALE (default 1.0).
double ScaleFactor();

/// Repetitions per measurement from JPAR_BENCH_REPEATS (default 3; the
/// paper uses 5 runs and reports the average).
int Repeats();

/// Builds (and memoizes per process) a sensor collection of roughly
/// `base_bytes * ScaleFactor()` bytes.
const Collection& SensorData(uint64_t base_bytes,
                             int measurements_per_array = 30,
                             uint64_t seed = 42);

/// An engine with the given rule configuration and parallelism, with
/// the sensor collection registered as "/sensors".
Engine MakeSensorEngine(const Collection& data, RuleOptions rules,
                        int partitions = 1, int partitions_per_node = 4,
                        ExprMode expr_mode = ExprMode::kAuto);

/// Result of a repeated measurement.
struct Measurement {
  double real_ms = 0;       // average wall-clock per run
  double makespan_ms = 0;   // average simulated-parallel time per run
  uint64_t result_rows = 0;
  uint64_t peak_bytes = 0;
  uint64_t max_tuple_bytes = 0;
  uint64_t pipeline_bytes = 0;  // frame bytes between operators
  // Memory-governed spilling (one run's worth; all 0 unless the engine
  // ran with ExecOptions::spill == kEnabled and actually spilled).
  uint64_t spill_runs = 0;
  uint64_t spill_bytes = 0;
  uint64_t spill_merge_passes = 0;
};

/// Runs `query` Repeats() times and averages.
Measurement RunQuery(const Engine& engine, const char* query);

/// stdout table helpers (fixed-width, paper-style).
void PrintTableHeader(const std::string& title,
                      const std::vector<std::string>& columns);
void PrintTableRow(const std::vector<std::string>& cells);
std::string FormatMs(double ms);
std::string FormatBytes(uint64_t bytes);

/// Fails the process with a message when a bench hits an error (benches
/// are not tests, but must not silently print garbage).
void CheckOk(const jpar::Status& status, const char* context);

/// Read-modify-writes one section of a shared JSON results file: the
/// file holds a single top-level object, `section_json` (a complete
/// JSON value) replaces or appends the `section_name` key, and every
/// other key is preserved. Lets several bench binaries accumulate into
/// one artifact (e.g. BENCH_expr_bytecode.json).
void UpdateBenchJsonSection(const std::string& path,
                            const std::string& section_name,
                            const std::string& section_json);

}  // namespace jparbench

#endif  // JPAR_BENCH_BENCH_COMMON_H_
