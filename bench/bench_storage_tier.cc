// Warm storage tier bench (DESIGN.md §14). Measures, over path-backed
// NDJSON collections on disk (the cache only serves disk files):
//
//   1. a shallow projection over text-heavy event records cold vs
//      tape-warm vs columnar-warm — the headline numbers. Long string
//      payloads contribute no structural positions, so a tape-warm
//      scan walks almost nothing while a cold scan still pays the full
//      byte-level stage-1 pass; columnar-warm touches no JSON at all,
//   2. a touch-all value projection over the dense sensor corpus — the
//      shredding win when stage-2 parse work dominates (tapes help
//      only modestly there, honestly reported),
//   3. a numeric range predicate over an ascending reading stream —
//      zone maps prune the blocks the predicate provably excludes.
//
// Every warm run is checked row-identical to its cold run. Besides the
// stdout tables it writes BENCH_storage_tier.json to the current
// directory (run_benches.sh runs from the repo root).

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "storage/storage_tier.h"

namespace jparbench {
namespace {

using Clock = std::chrono::steady_clock;
using jpar::CompiledQuery;
using jpar::ExecOptions;
using jpar::Item;
using jpar::JsonFile;
using jpar::StorageManager;
using jpar::StorageMode;

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Bench corpus directory; files (and their cache sidecars) are removed
/// on exit.
class BenchDir {
 public:
  BenchDir() {
    std::string tmpl = "/tmp/jpar_bench_storage_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = ::mkdtemp(buf.data());
    if (made == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      std::exit(1);
    }
    dir_ = made;
  }

  ~BenchDir() {
    // Sweep the whole directory: the storage tier leaves .jtape and
    // .<hash>.jcol sidecars next to the data files.
    if (DIR* d = ::opendir(dir_.c_str())) {
      while (struct dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        std::remove((dir_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(dir_.c_str());
  }

  std::string Write(const std::string& name, const std::string& text) {
    std::string path = dir_ + "/" + name;
    std::ofstream out(path, std::ios::binary);
    out << text;
    return path;
  }

 private:
  std::string dir_;
};

struct Timed {
  double ms = 0;  // best-of-Repeats wall clock
  uint64_t rows = 0;
  uint64_t tape_hits = 0;
  uint64_t columns_read = 0;
  uint64_t blocks_pruned = 0;
  std::vector<std::string> fingerprint;  // first/last rows, for equality
};

Timed RunMode(const Engine& engine, const CompiledQuery& plan,
              StorageMode mode) {
  ExecOptions exec;
  exec.partitions = 1;
  exec.storage_mode = mode;
  Timed t;
  t.ms = 1e30;
  for (int rep = 0; rep < Repeats(); ++rep) {
    Clock::time_point t0 = Clock::now();
    auto out = engine.Execute(plan, exec);
    Clock::time_point t1 = Clock::now();
    CheckOk(out.status(), "storage bench query");
    t.ms = std::min(t.ms, MsBetween(t0, t1));
    t.rows = out->items.size();
    t.tape_hits = out->stats.tape_hits;
    t.columns_read = out->stats.columns_read;
    t.blocks_pruned = out->stats.blocks_pruned;
    t.fingerprint.clear();
    for (const Item& item : out->items) {
      t.fingerprint.push_back(item.ToJsonString());
    }
  }
  return t;
}

struct QueryResult {
  const char* name;
  Timed cold;
  Timed tape;
  Timed columnar;
};

QueryResult BenchQuery(const Engine& engine, const char* name,
                       const char* query) {
  auto compiled = engine.Compile(query, RuleOptions::All());
  CheckOk(compiled.status(), "compile storage bench query");

  QueryResult r;
  r.name = name;
  r.cold = RunMode(engine, *compiled, StorageMode::kOff);
  // Prime both cache levels, then measure each warm level.
  RunMode(engine, *compiled, StorageMode::kAuto);
  r.tape = RunMode(engine, *compiled, StorageMode::kTape);
  r.columnar = RunMode(engine, *compiled, StorageMode::kAuto);

  if (r.tape.fingerprint != r.cold.fingerprint ||
      r.columnar.fingerprint != r.cold.fingerprint) {
    std::fprintf(stderr, "%s: warm rows differ from cold rows\n", name);
    std::exit(1);
  }
  if (!jpar::StorageCacheDisabledByEnv() &&
      (r.tape.tape_hits == 0 || r.columnar.columns_read == 0)) {
    std::fprintf(stderr, "%s: warm run did not engage the cache\n", name);
    std::exit(1);
  }
  return r;
}

void Run() {
  BenchDir dir;

  // Unwrapped {metadata, results} documents, NDJSON, on disk.
  SensorDataSpec spec;
  spec.measurements_per_array = 30;
  spec.records_per_file = 64;
  uint64_t target =
      static_cast<uint64_t>(12.0 * 1024 * 1024 * ScaleFactor());
  Collection sensors;
  uint64_t corpus_bytes = 0;
  for (int f = 0; corpus_bytes < target; ++f) {
    std::string text;
    for (std::string& doc : jpar::GenerateUnwrappedDocuments(spec, f)) {
      text += doc;
      text += '\n';
    }
    corpus_bytes += text.size();
    sensors.files.push_back(JsonFile::FromPath(
        dir.Write("sensors_" + std::to_string(f) + ".ndjson", text)));
  }

  // An ascending reading stream: realistic for timestamped telemetry,
  // and the shape where per-block min/max zone maps actually prune.
  Collection readings;
  uint64_t readings_rows =
      static_cast<uint64_t>(200000.0 * ScaleFactor());
  {
    std::string text;
    for (uint64_t i = 0; i < readings_rows; ++i) {
      text += "{\"t\": " + std::to_string(i) +
              ", \"v\": " + std::to_string((i * 37) % 1000) + "}\n";
    }
    readings.files.push_back(
        JsonFile::FromPath(dir.Write("readings.ndjson", text)));
  }

  // Text-heavy event records: a small structural skeleton around a
  // long message payload (log/event streams look like this). Stage 1
  // must scan every byte; the cached tape makes the warm walk cheap.
  Collection events;
  uint64_t events_bytes = 0;
  {
    const char* kWords[] = {"request", "timed", "out", "retrying",
                            "upstream", "shard", "checksum", "verified",
                            "rebalance", "complete", "latency", "budget"};
    int file = 0;
    uint64_t id = 0;
    while (events_bytes < target) {
      std::string text;
      for (int r = 0; r < 500; ++r, ++id) {
        std::string message;
        for (int w = 0; w < 220; ++w) {
          message += kWords[(id + static_cast<uint64_t>(w) * 7) % 12];
          message += ' ';
        }
        text += "{\"id\": " + std::to_string(id) + ", \"level\": \"" +
                (id % 17 == 0 ? "error" : "info") + "\", \"message\": \"" +
                message + "\"}\n";
      }
      events_bytes += text.size();
      events.files.push_back(JsonFile::FromPath(
          dir.Write("events_" + std::to_string(file++) + ".ndjson", text)));
    }
  }

  Engine engine;
  engine.catalog()->RegisterCollection("/sensors", std::move(sensors));
  engine.catalog()->RegisterCollection("/readings", std::move(readings));
  engine.catalog()->RegisterCollection("/events", std::move(events));

  StorageManager::Instance().Clear();

  // 1. Shallow projection over the text-heavy corpus. Cold pays read +
  //    stage 1 over every byte + the walk; tape pays only the walk
  //    (long strings hold no structural positions); columnar reads one
  //    narrow column.
  QueryResult project = BenchQuery(
      engine, "project",
      R"(for $l in collection("/events")("level") return $l)");

  // 2. Touch-all projection: every measurement value materializes.
  QueryResult values = BenchQuery(
      engine, "values",
      R"(for $v in collection("/sensors")("results")()("value") return $v)");

  // 3. Range predicate over the ascending stream: the threshold keeps
  //    the last ~5% of rows, so zone maps prune ~95% of blocks.
  std::string cutoff = std::to_string(readings_rows * 95 / 100);
  std::string zone_query = "for $t in collection(\"/readings\")(\"t\") "
                           "where $t gt " + cutoff + " return $t";
  QueryResult zone =
      BenchQuery(engine, "zone-predicate", zone_query.c_str());

  PrintTableHeader("Warm storage tier (best-of-" +
                       std::to_string(Repeats()) + " wall ms)",
                   {"query", "cold", "tape-warm", "columnar-warm",
                    "tape x", "col x", "pruned"});
  for (const QueryResult* r : {&project, &values, &zone}) {
    PrintTableRow({r->name, FormatMs(r->cold.ms), FormatMs(r->tape.ms),
                   FormatMs(r->columnar.ms),
                   std::to_string(r->cold.ms / r->tape.ms),
                   std::to_string(r->cold.ms / r->columnar.ms),
                   std::to_string(r->columnar.blocks_pruned)});
  }

  FILE* out = std::fopen("BENCH_storage_tier.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_storage_tier.json\n");
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"sensor_bytes\": %llu,\n",
               static_cast<unsigned long long>(corpus_bytes));
  std::fprintf(out, "  \"events_bytes\": %llu,\n",
               static_cast<unsigned long long>(events_bytes));
  std::fprintf(out, "  \"readings_rows\": %llu,\n",
               static_cast<unsigned long long>(readings_rows));
  bool first = true;
  for (const QueryResult* r : {&project, &values, &zone}) {
    std::fprintf(out, "%s  \"%s\": {\n", first ? "" : ",\n", r->name);
    first = false;
    std::fprintf(out, "    \"rows\": %llu,\n",
                 static_cast<unsigned long long>(r->cold.rows));
    std::fprintf(out, "    \"cold_ms\": %.3f,\n", r->cold.ms);
    std::fprintf(out, "    \"tape_warm_ms\": %.3f,\n", r->tape.ms);
    std::fprintf(out, "    \"columnar_warm_ms\": %.3f,\n", r->columnar.ms);
    std::fprintf(out, "    \"tape_speedup\": %.2f,\n",
                 r->cold.ms / r->tape.ms);
    std::fprintf(out, "    \"columnar_speedup\": %.2f,\n",
                 r->cold.ms / r->columnar.ms);
    std::fprintf(out, "    \"blocks_pruned\": %llu\n  }",
                 static_cast<unsigned long long>(r->columnar.blocks_pruned));
  }
  std::fprintf(out, "\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_storage_tier.json\n");
}

}  // namespace
}  // namespace jparbench

int main(int argc, char** argv) {
  jparbench::InitBenchArgs(argc, argv);
  jparbench::Run();
  return 0;
}
