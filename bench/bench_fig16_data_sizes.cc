// Figure 16: Q1 execution time (log scale) before/after ALL rewrite
// rules for growing collection sizes (paper: 100..400 MB; scaled:
// 1..4 MB x JPAR_BENCH_SCALE). Shows the system scaling proportionally
// with data size in both configurations.

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  PrintTableHeader("Figure 16: Q1 vs collection size, before/after all rules",
                   {"size", "before", "after", "speedup"});
  for (uint64_t mb : {1, 2, 3, 4}) {
    const Collection& data = SensorData(mb * 1024 * 1024);
    Engine eb = MakeSensorEngine(data, RuleOptions::None(), 1);
    Engine ea = MakeSensorEngine(data, RuleOptions::All(), 1);
    Measurement before = RunQuery(eb, kQ1);
    Measurement after = RunQuery(ea, kQ1);
    char size[32], speedup[32];
    std::snprintf(size, sizeof(size), "%llux100MB",
                  static_cast<unsigned long long>(mb));
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  before.real_ms / (after.real_ms > 0 ? after.real_ms : 1));
    PrintTableRow({size, FormatMs(before.real_ms), FormatMs(after.real_ms),
                   speedup});
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
