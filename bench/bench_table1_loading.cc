// Table 1: loading time for MongoDB and AsterixDB(load) across
// measurements-per-array (30/22/15/7/1). The paper's shape: MongoDB
// loads faster than AsterixDB(load) thanks to compression (fewer bytes
// written), and its load time grows as documents shrink (worse
// compression); AsterixDB(load) is roughly flat. VXQuery and external
// AsterixDB have no load phase at all.

#include "baselines/asterix_like.h"
#include "baselines/docstore.h"
#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const uint64_t base_bytes = 24ull * 1024 * 1024;
  PrintTableHeader(
      "Table 1: loading time (VXQuery and external AsterixDB load nothing)",
      {"meas/array", "MongoDB", "stored", "Asterix(load)", "stored"});
  for (int mpa : {30, 22, 15, 7, 1}) {
    jpar::SensorDataSpec spec;
    spec.measurements_per_array = mpa;
    uint64_t per_record = 40 + static_cast<uint64_t>(mpa) * 105;
    spec.records_per_file = static_cast<int>(512 * 1024 / per_record) + 1;
    spec = jpar::SpecForBytes(
        spec, static_cast<uint64_t>(static_cast<double>(base_bytes) *
                                    ScaleFactor()));
    std::vector<std::string> docs;
    Collection files;
    for (int f = 0; f < spec.num_files; ++f) {
      for (std::string& d : jpar::GenerateUnwrappedDocuments(spec, f)) {
        files.files.push_back(jpar::JsonFile::FromText(d));
        docs.push_back(std::move(d));
      }
    }

    jpar::DocStore mongo;
    auto mongo_load = mongo.Load(docs);
    CheckOk(mongo_load.status(), "mongo load");

    jpar::AsterixLikeOptions aopts;
    aopts.preload = true;
    jpar::AsterixLike asterix(aopts);
    auto asterix_load = asterix.Register("/sensors", files);
    CheckOk(asterix_load.status(), "asterix load");

    PrintTableRow({std::to_string(mpa), FormatMs(mongo_load->load_ms),
                   FormatBytes(mongo_load->stored_bytes),
                   FormatMs(asterix_load->load_ms),
                   FormatBytes(asterix_load->stored_bytes)});
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
