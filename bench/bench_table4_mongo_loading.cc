// Table 4: MongoDB loading time for the scale-up (88 GB-scaled) and
// speed-up (803 GB-scaled) datasets — the paper's point: the load
// phase is a huge fixed cost VXQuery never pays (9000s and 81000s in
// the paper). Also demonstrates the 16 MB document-size failure mode:
// loading the wrapped multi-record files as single documents fails
// once a file exceeds the limit.

#include "bench/bench_common.h"
#include "bench/sharded_docstore.h"

namespace jparbench {
namespace {

std::vector<std::string> UnwrappedDocs(uint64_t scaled_bytes) {
  jpar::SensorDataSpec spec;
  spec.measurements_per_array = 30;
  spec.records_per_file = static_cast<int>(512 * 1024 / (40 + 30 * 105)) + 1;
  spec = jpar::SpecForBytes(spec, scaled_bytes);
  std::vector<std::string> docs;
  for (int f = 0; f < spec.num_files; ++f) {
    for (std::string& d : jpar::GenerateUnwrappedDocuments(spec, f)) {
      docs.push_back(std::move(d));
    }
  }
  return docs;
}

void Run() {
  PrintTableHeader("Table 4: MongoDB loading time",
                   {"dataset", "load(max/shard)", "stored"});
  struct Row {
    const char* label;
    uint64_t bytes;
    int shards;
  };
  for (const Row& row : {Row{"88GB-scaled", 4ull * 1024 * 1024, 1},
                         Row{"803GB-scaled", 36ull * 1024 * 1024, 9}}) {
    uint64_t scaled = static_cast<uint64_t>(
        static_cast<double>(row.bytes) * ScaleFactor());
    ShardedDocStore mongo(row.shards);
    auto stats = mongo.Load(UnwrappedDocs(scaled));
    CheckOk(stats.status(), "mongo load");
    PrintTableRow({row.label, FormatMs(stats->load_ms),
                   FormatBytes(stats->stored_bytes)});
  }

  // The document-size limit: loading a wrapped file as ONE document
  // fails once the file passes 16 MB (here: a tiny limit for speed).
  jpar::DocStoreOptions tiny;
  tiny.max_document_bytes = 64 * 1024;
  jpar::DocStore limited(tiny);
  jpar::SensorDataSpec spec;
  spec.num_files = 1;
  spec.records_per_file = 64;
  auto status =
      limited.Load({jpar::GenerateSensorFile(spec, 0)}).status();
  std::printf(
      "\nLoading a wrapped multi-record file as one document with a\n"
      "64KB limit (stand-in for MongoDB's 16MB): %s\n",
      status.ok() ? "unexpectedly succeeded" : status.ToString().c_str());
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
