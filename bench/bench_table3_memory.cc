// Table 3: memory allocated by Spark SQL vs VXQuery per data size
// (paper: Spark holds the whole dataset — 5.6..8 GB for 0.4..1 GB
// inputs — while VXQuery stays flat at ~1.7 GB regardless of input).
// Here: the MemTable retains the materialized documents; the engine
// retains only group-table state, independent of input size.

#include "baselines/memtable.h"
#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  PrintTableHeader("Table 3: data size vs system memory (Q1)",
                   {"size", "spark-memory", "vxquery-memory"});
  for (uint64_t mb : {4, 8, 10}) {
    const Collection& data = SensorData(mb * 1024 * 1024);

    jpar::MemTable spark;
    CheckOk(spark.Load(data).status(), "spark load");

    Engine vx = MakeSensorEngine(data, RuleOptions::All(), 1);
    Measurement m = RunQuery(vx, kQ1);

    char size[32];
    std::snprintf(size, sizeof(size), "%llux100MB",
                  static_cast<unsigned long long>(mb));
    PrintTableRow({size, FormatBytes(spark.memory_bytes()),
                   FormatBytes(m.peak_bytes)});
  }
  std::printf(
      "\n(Spark memory grows with the input; the engine's retained\n"
      " memory is the group-by table only — flat in the input size.)\n");
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
