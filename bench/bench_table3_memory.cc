// Table 3: memory allocated by Spark SQL vs VXQuery per data size
// (paper: Spark holds the whole dataset — 5.6..8 GB for 0.4..1 GB
// inputs — while VXQuery stays flat at ~1.7 GB regardless of input).
// Here: the MemTable retains the materialized documents; the engine
// retains only group-table state, independent of input size.
//
// The spill-enabled variants (DESIGN.md §10) cap even that group-table
// state: with a 16 KiB soft budget (a quarter of the ~58 KB the
// unlimited group table retains) the engine's retained peak stays near
// the budget at every input size, trading the excess for temp-run I/O,
// which is reported alongside. Machine-readable results land in
// BENCH_spill_memory.json.

#include <cstdio>
#include <vector>

#include "baselines/memtable.h"
#include "bench/bench_common.h"

namespace jparbench {
namespace {

constexpr uint64_t kSpillBudgetBytes = 16 << 10;

struct SpillRow {
  uint64_t size_mb = 0;
  uint64_t unlimited_peak = 0;
  uint64_t spill_peak = 0;
  uint64_t spill_runs = 0;
  uint64_t spill_bytes = 0;
  uint64_t spill_merge_passes = 0;
  double spill_real_ms = 0;
};

Measurement RunQ1WithSpill(const Collection& data) {
  Engine engine = MakeSensorEngine(data, RuleOptions::All(), 1);
  EngineOptions options = engine.options();
  options.exec.memory_limit_bytes = kSpillBudgetBytes;
  options.exec.spill = jpar::SpillMode::kEnabled;
  engine.set_options(options);
  return RunQuery(engine, kQ1);
}

void WriteJson(const std::vector<SpillRow>& rows) {
  FILE* out = std::fopen("BENCH_spill_memory.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_spill_memory.json\n");
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"budget_bytes\": %llu,\n  \"rows\": [\n",
               static_cast<unsigned long long>(kSpillBudgetBytes));
  for (size_t i = 0; i < rows.size(); ++i) {
    const SpillRow& r = rows[i];
    std::fprintf(out,
                 "    {\"size_mb\": %llu, \"unlimited_peak_bytes\": %llu, "
                 "\"spill_peak_bytes\": %llu, \"spill_runs\": %llu, "
                 "\"spill_bytes_written\": %llu, \"spill_merge_passes\": "
                 "%llu, \"spill_real_ms\": %.2f}%s\n",
                 static_cast<unsigned long long>(r.size_mb),
                 static_cast<unsigned long long>(r.unlimited_peak),
                 static_cast<unsigned long long>(r.spill_peak),
                 static_cast<unsigned long long>(r.spill_runs),
                 static_cast<unsigned long long>(r.spill_bytes),
                 static_cast<unsigned long long>(r.spill_merge_passes),
                 r.spill_real_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_spill_memory.json\n");
}

void Run() {
  PrintTableHeader("Table 3: data size vs system memory (Q1)",
                   {"size", "spark-memory", "vxquery-memory", "spill-memory",
                    "spill-io"});
  std::vector<SpillRow> rows;
  for (uint64_t mb : {4, 8, 10}) {
    const Collection& data = SensorData(mb * 1024 * 1024);

    jpar::MemTable spark;
    CheckOk(spark.Load(data).status(), "spark load");

    Engine vx = MakeSensorEngine(data, RuleOptions::All(), 1);
    Measurement m = RunQuery(vx, kQ1);
    Measurement spill = RunQ1WithSpill(data);

    SpillRow row;
    row.size_mb = mb * 100;  // the paper's scale labeling
    row.unlimited_peak = m.peak_bytes;
    row.spill_peak = spill.peak_bytes;
    row.spill_runs = spill.spill_runs;
    row.spill_bytes = spill.spill_bytes;
    row.spill_merge_passes = spill.spill_merge_passes;
    row.spill_real_ms = spill.real_ms;
    rows.push_back(row);

    char size[32];
    std::snprintf(size, sizeof(size), "%llux100MB",
                  static_cast<unsigned long long>(mb));
    PrintTableRow({size, FormatBytes(spark.memory_bytes()),
                   FormatBytes(m.peak_bytes), FormatBytes(spill.peak_bytes),
                   FormatBytes(spill.spill_bytes)});
  }
  std::printf(
      "\n(Spark memory grows with the input; the engine's retained\n"
      " memory is the group-by table only — flat in the input size —\n"
      " and with spilling enabled (16 KiB budget) the group table\n"
      " itself is capped, trading retained memory for temp-run I/O.)\n");
  WriteJson(rows);
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
