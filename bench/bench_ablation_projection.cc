// Ablation (beyond the paper): DATASCAN second-argument depth. The
// paper observes Q0b (which pushes ("date") into the scan) beats Q0;
// this sweep generalizes: the deeper the pushed path, the less JSON is
// materialized. Counts the items and bytes the scan materializes per
// variant.

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const Collection& data = SensorData(8ull * 1024 * 1024);
  struct Variant {
    const char* label;
    const char* query;
  };
  const Variant variants[] = {
      {"whole file",
       R"(for $r in collection("/sensors")() return count($r))"},
      {"root()", R"(
        for $r in collection("/sensors")("root")()
        return count($r("metadata")))"},
      {"root()results()", R"(
        for $r in collection("/sensors")("root")()("results")()
        return count($r("station")))"},
      {"...results()date", R"(
        for $r in collection("/sensors")("root")()("results")()("date")
        return count($r))"},
  };
  PrintTableHeader("Ablation: scan projection depth (all rules on)",
                   {"projection", "time", "rows", "pipeline-bytes"});
  for (const Variant& v : variants) {
    Engine engine = MakeSensorEngine(data, RuleOptions::All(), 1);
    Measurement m = RunQuery(engine, v.query);
    PrintTableRow({v.label, FormatMs(m.real_ms),
                   std::to_string(m.result_rows),
                   FormatBytes(m.pipeline_bytes)});
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
