// Figure 21: cluster scale-up — 88 GB per node in the paper (scaled:
// 4 MB x JPAR_BENCH_SCALE per node), nodes 1..9, so the dataset grows
// with the cluster. Expected shape: the makespan stays roughly flat
// for every query (perfect scale-up).

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const uint64_t per_node = 4ull * 1024 * 1024;

  std::vector<std::string> header = {"query"};
  for (int n = 1; n <= 9; ++n) {
    header.push_back(std::to_string(n) + (n == 1 ? " node" : " nodes"));
  }
  PrintTableHeader("Figure 21: cluster scale-up (88GB-scaled per node)",
                   header);
  for (const NamedQuery& q : kAllQueries) {
    std::vector<std::string> row = {q.name};
    for (int nodes = 1; nodes <= 9; ++nodes) {
      const Collection& data =
          SensorData(per_node * static_cast<uint64_t>(nodes));
      Engine engine =
          MakeSensorEngine(data, RuleOptions::All(), nodes * 4, 4);
      Measurement m = RunQuery(engine, q.text);
      row.push_back(FormatMs(m.makespan_ms));
    }
    PrintTableRow(row);
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
