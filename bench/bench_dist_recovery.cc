// Recovery cost of the fault-tolerant distributed runtime (DESIGN.md
// §12): for each paper query on a 4-worker cluster, the unfailed
// distributed wall-clock next to runs where a worker is SIGKILLed at
// the leaf dispatch, halfway, and near the end of the baseline time.
// With fragment retry + exchange replay the killed runs still succeed
// (byte-identity is asserted in tests/dist_chaos_test.cc); what this
// bench measures is the price: recovered wall-clock vs baseline, plus
// the recovery counters (retries, respawns, replayed frames).
//
// Machine-readable results land in BENCH_dist_recovery.json. When the
// jpar_worker binary is missing the bench warns and exits 0 so
// run_benches.sh keeps going.

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "dist/dispatcher.h"

#ifndef JPAR_WORKER_BIN_PATH
#define JPAR_WORKER_BIN_PATH ""
#endif

namespace jparbench {
namespace {

using jpar::Cluster;
using jpar::DistOptions;
using jpar::QueryContext;

constexpr int kWorkers = 4;

struct Point {
  std::string query;
  std::string schedule;  // "baseline" | "kill@dispatch" | "kill@50%" | ...
  double real_ms = 0;
  double recovery_ms = 0;
  uint64_t fragment_retries = 0;
  uint64_t workers_respawned = 0;
  uint64_t frames_replayed = 0;
  uint64_t replay_spill_bytes = 0;
};

/// jpar_worker children of this process (scans /proc).
std::vector<pid_t> ChildWorkerPids() {
  std::vector<pid_t> pids;
  DIR* proc = opendir("/proc");
  if (proc == nullptr) return pids;
  while (dirent* entry = readdir(proc)) {
    pid_t pid = static_cast<pid_t>(std::atol(entry->d_name));
    if (pid <= 0) continue;
    char path[64];
    std::snprintf(path, sizeof(path), "/proc/%d/stat", pid);
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) continue;
    char comm[64] = {0};
    int ppid = 0;
    int n = std::fscanf(f, "%*d (%63[^)]) %*c %d", comm, &ppid);
    std::fclose(f);
    if (n == 2 && ppid == getpid() && std::strcmp(comm, "jpar_worker") == 0) {
      pids.push_back(pid);
    }
  }
  closedir(proc);
  return pids;
}

/// One-shot kill right before the leaf-stage dispatch, armed per run.
std::atomic<bool> g_kill_at_dispatch{false};

void RoundHook(int stage_id, int attempt) {
  if (stage_id != 0 || attempt != 0) return;
  if (!g_kill_at_dispatch.exchange(false)) return;
  std::vector<pid_t> pids = ChildWorkerPids();
  if (!pids.empty()) kill(pids[0], SIGKILL);
}

Point Measure(Cluster* cluster, Engine* engine,
              const jpar::CompiledQuery& compiled, const char* query,
              const std::string& schedule, double kill_after_ms) {
  const EngineOptions& options = engine->options();
  Point point;
  point.schedule = schedule;
  double total_ms = 0;
  for (int rep = 0; rep < Repeats(); ++rep) {
    std::thread killer;
    if (schedule == "kill@dispatch") {
      g_kill_at_dispatch.store(true);
    } else if (kill_after_ms >= 0) {
      killer = std::thread([kill_after_ms] {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(kill_after_ms));
        std::vector<pid_t> pids = ChildWorkerPids();
        if (!pids.empty()) kill(pids[0], SIGKILL);
      });
    }
    auto out = cluster->Run(query, options.rules, options.exec, compiled,
                            *engine->catalog(), nullptr);
    if (killer.joinable()) killer.join();
    g_kill_at_dispatch.store(false);
    CheckOk(out.status(), ("distributed run (" + schedule + ")").c_str());
    total_ms += out->stats.real_ms;
    point.recovery_ms += out->stats.recovery_ms;
    point.fragment_retries += out->stats.fragment_retries;
    point.workers_respawned += out->stats.workers_respawned;
    point.frames_replayed += out->stats.frames_replayed;
    point.replay_spill_bytes += out->stats.replay_spill_bytes;
  }
  point.real_ms = total_ms / Repeats();
  point.recovery_ms /= Repeats();
  return point;
}

void WriteJson(const std::vector<Point>& points) {
  FILE* out = std::fopen("BENCH_dist_recovery.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_dist_recovery.json\n");
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"workers\": %d,\n  \"points\": [\n", kWorkers);
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(
        out,
        "    {\"query\": \"%s\", \"schedule\": \"%s\", "
        "\"real_ms\": %.3f, \"recovery_ms\": %.3f, "
        "\"fragment_retries\": %llu, \"workers_respawned\": %llu, "
        "\"frames_replayed\": %llu, \"replay_spill_bytes\": %llu}%s\n",
        p.query.c_str(), p.schedule.c_str(), p.real_ms, p.recovery_ms,
        static_cast<unsigned long long>(p.fragment_retries),
        static_cast<unsigned long long>(p.workers_respawned),
        static_cast<unsigned long long>(p.frames_replayed),
        static_cast<unsigned long long>(p.replay_spill_bytes),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_dist_recovery.json\n");
}

void Run() {
  const Collection& data = SensorData(4ull * 1024 * 1024);
  Engine engine = MakeSensorEngine(data, RuleOptions::All(), kWorkers, 4);

  DistOptions dist;
  dist.local_workers = kWorkers;
  dist.worker_binary = JPAR_WORKER_BIN_PATH;
  dist.heartbeat_ms = 200;
  dist.worker_timeout_ms = 5000;
  dist.drain_timeout_ms = 1000;
  dist.max_fragment_retries = 3;
  dist.retry_backoff_ms = 25;
  dist.test_round_hook = RoundHook;
  Cluster cluster(dist);

  std::vector<Point> points;
  PrintTableHeader(
      "Distributed recovery cost (4 workers, one SIGKILL per run)",
      {"query", "baseline", "kill@dispatch", "kill@50%", "kill@90%",
       "retries/run"});
  for (const NamedQuery& q : kAllQueries) {
    auto compiled = engine.Compile(q.text, engine.options().rules);
    CheckOk(compiled.status(), "compile");

    Point baseline =
        Measure(&cluster, &engine, *compiled, q.text, "baseline", -1);
    Point at_dispatch =
        Measure(&cluster, &engine, *compiled, q.text, "kill@dispatch", -1);
    Point mid = Measure(&cluster, &engine, *compiled, q.text, "kill@50%",
                        baseline.real_ms * 0.5);
    Point late = Measure(&cluster, &engine, *compiled, q.text, "kill@90%",
                         baseline.real_ms * 0.9);

    uint64_t retries = at_dispatch.fragment_retries + mid.fragment_retries +
                       late.fragment_retries;
    PrintTableRow({q.name, FormatMs(baseline.real_ms),
                   FormatMs(at_dispatch.real_ms), FormatMs(mid.real_ms),
                   FormatMs(late.real_ms),
                   std::to_string(retries / (3.0 * Repeats()))});
    for (Point* p : {&baseline, &at_dispatch, &mid, &late}) {
      p->query = q.name;
      points.push_back(*p);
    }
  }
  cluster.Stop();
  std::printf(
      "\n(baseline = unfailed distributed run; the kill columns SIGKILL\n"
      " one jpar_worker at the named point and recover via fragment\n"
      " retry + exchange replay (max_fragment_retries=3). A thread-\n"
      " scheduled kill can land after the query finished — those runs\n"
      " show retries/run < 1; kill@dispatch always lands.)\n");
  WriteJson(points);
}

}  // namespace
}  // namespace jparbench

int main() {
  const char* bin = JPAR_WORKER_BIN_PATH;
  if (bin[0] == '\0' || access(bin, X_OK) != 0) {
    std::fprintf(stderr,
                 "bench_dist_recovery: jpar_worker binary not found at '%s'; "
                 "skipping (build the jpar_worker target first)\n",
                 bin);
    return 0;
  }
  jparbench::Run();
  return 0;
}
