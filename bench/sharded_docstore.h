#ifndef JPAR_BENCH_SHARDED_DOCSTORE_H_
#define JPAR_BENCH_SHARDED_DOCSTORE_H_

// A sharded MongoDB model for the cluster comparisons (Figs. 24/25,
// Table 4): N DocStore shards, documents distributed round-robin.
// Query makespans are max-over-shards of the measured per-shard time
// (same accounting as the engine's cluster simulator), plus a central
// merge for the join.

#include <vector>

#include "baselines/docstore.h"
#include "common/result.h"

namespace jparbench {

class ShardedDocStore {
 public:
  explicit ShardedDocStore(int shards)
      : shards_(static_cast<size_t>(shards > 0 ? shards : 1)) {}

  /// Loads documents round-robin across shards; load time is the
  /// max over shards (they load in parallel in a real cluster).
  jpar::Result<jpar::LoadStats> Load(const std::vector<std::string>& docs);

  /// Q0b: per-shard selection; returns the simulated makespan.
  jpar::Result<double> RunQ0bMs(uint64_t* rows) const;

  /// Q2: per-shard $unwind+$project, then a central TMIN/TMAX join
  /// (the paper's MongoDB workaround). Returns the simulated makespan.
  jpar::Result<double> RunQ2Ms(double* result) const;

  uint64_t stored_bytes() const;

 private:
  std::vector<jpar::DocStore> shards_;
};

}  // namespace jparbench

#endif  // JPAR_BENCH_SHARDED_DOCSTORE_H_
