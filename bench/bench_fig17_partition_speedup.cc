// Figure 17: single-node speed-up for 1/2/4/8 partitions on all five
// queries (paper: 88 GB on a 4-core node; 8 partitions use
// hyperthreads and do NOT improve over 4). Scaled: 16 MB x
// JPAR_BENCH_SCALE. Times are the simulated-parallel makespan (the
// reproduction host has one core; see DESIGN.md), with partition tasks
// LPT-scheduled onto the node's 4 modeled cores — which reproduces the
// hyperthreading plateau.

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const Collection& data = SensorData(16ull * 1024 * 1024);
  const int kPartitions[] = {1, 2, 4, 8};

  PrintTableHeader(
      "Figure 17: single-node speed-up (makespan, 4 modeled cores)",
      {"query", "1 part", "2 parts", "4 parts", "8 parts (HT)"});
  for (const NamedQuery& q : kAllQueries) {
    std::vector<std::string> row = {q.name};
    for (int p : kPartitions) {
      // All partitions live on one node: partitions_per_node == 8.
      Engine engine = MakeSensorEngine(data, RuleOptions::All(), p, 8);
      Measurement m = RunQuery(engine, q.text);
      row.push_back(FormatMs(m.makespan_ms));
    }
    PrintTableRow(row);
  }
  std::printf(
      "\n(8 partitions map onto 4 modeled cores, so the last column\n"
      " should roughly match the 4-partition column — the paper's\n"
      " hyperthreading observation.)\n");
}

}  // namespace
}  // namespace jparbench

int main(int argc, char** argv) {
  jparbench::InitBenchArgs(argc, argv);
  jparbench::Run();
  return 0;
}
