// Ablation (beyond the paper): Algebricks' two-step aggregation in
// isolation. The paper activates it as part of the group-by rules
// (§4.3, "each partition can calculate locally the count function on
// its data") but never isolates its effect. This sweeps partition
// counts for Q1 with and without local pre-aggregation and reports the
// exchanged tuple volume — the quantity two-step aggregation shrinks.

#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  const Collection& data = SensorData(8ull * 1024 * 1024);
  PrintTableHeader(
      "Ablation: two-step aggregation on Q1",
      {"partitions", "mode", "makespan", "exchanged", "exch-bytes"});
  for (int partitions : {4, 16, 36}) {
    for (bool two_step : {false, true}) {
      RuleOptions rules = RuleOptions::All();
      rules.two_step_aggregation = two_step;
      Engine engine = MakeSensorEngine(data, rules, partitions, 4);
      auto compiled = engine.Compile(kQ1);
      CheckOk(compiled.status(), "compile");
      double ms = 0;
      uint64_t tuples = 0, bytes = 0;
      for (int i = 0; i < Repeats(); ++i) {
        auto result = engine.Execute(*compiled);
        CheckOk(result.status(), "execute");
        ms += result->stats.makespan_ms;
        tuples = bytes = 0;
        for (const jpar::StageStats& s : result->stats.stages) {
          tuples += s.exchange_tuples;
          bytes += s.exchange_bytes;
        }
      }
      PrintTableRow({std::to_string(partitions),
                     two_step ? "local+global" : "single-step",
                     FormatMs(ms / Repeats()), std::to_string(tuples),
                     FormatBytes(bytes)});
    }
  }
  std::printf(
      "\n(single-step ships every matching tuple to the hash exchange;\n"
      " two-step ships one partial per (partition, group).)\n");
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
