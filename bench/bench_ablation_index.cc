// Ablation (the paper's §6 future work, implemented): path-index file
// pruning for equality-selective queries over a chronologically
// partitioned sensor archive. "Indexing will further improve the
// system's performance since the searched data volume will be
// significantly reduced" — this measures exactly that, plus the
// index build cost.

#include <chrono>

#include "bench/bench_common.h"

namespace jparbench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kQuery = R"(
    for $r in collection("/sensors")("root")()("results")()
    where $r("date") eq "20130301T00:00"
    return $r)";

void Run() {
  jpar::SensorDataSpec spec;
  spec.chronological = true;
  spec.start_year = 2013;
  spec.end_year = 2014;
  spec.records_per_file = 16;
  spec = jpar::SpecForBytes(
      spec, static_cast<uint64_t>(16.0 * 1024 * 1024 * ScaleFactor()));
  Collection data = jpar::GenerateSensorCollection(spec);

  std::vector<jpar::PathStep> date_path = {
      jpar::PathStep::Key("root"), jpar::PathStep::KeysOrMembers(),
      jpar::PathStep::Key("results"), jpar::PathStep::KeysOrMembers(),
      jpar::PathStep::Key("date")};

  // Full scan.
  EngineOptions plain;
  plain.exec.partitions = 4;
  Engine full(plain);
  full.catalog()->RegisterCollection("/sensors", data);
  Measurement full_scan = RunQuery(full, kQuery);
  auto full_result = full.Run(kQuery);
  CheckOk(full_result.status(), "full scan");

  // Indexed scan.
  EngineOptions with_index = plain;
  with_index.rules.index_rules = true;
  Engine indexed(with_index);
  indexed.catalog()->RegisterCollection("/sensors", data);
  auto build_start = Clock::now();
  CheckOk(indexed.catalog()->BuildPathIndex("/sensors", date_path),
          "index build");
  double build_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - build_start)
          .count();
  Measurement pruned = RunQuery(indexed, kQuery);
  auto pruned_result = indexed.Run(kQuery);
  CheckOk(pruned_result.status(), "indexed scan");

  PrintTableHeader(
      "Ablation: path index on results.date (chronological archive)",
      {"variant", "time", "bytes-scanned", "rows"});
  PrintTableRow({"full scan", FormatMs(full_scan.real_ms),
                 FormatBytes(full_result->stats.bytes_scanned),
                 std::to_string(full_result->stats.result_rows)});
  PrintTableRow({"indexed", FormatMs(pruned.real_ms),
                 FormatBytes(pruned_result->stats.bytes_scanned),
                 std::to_string(pruned_result->stats.result_rows)});
  std::printf("\nindex build (one-time): %s for %d files\n",
              FormatMs(build_ms).c_str(), spec.num_files);
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
