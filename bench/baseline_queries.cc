#include "bench/baseline_queries.h"

namespace jparbench {

using jpar::Item;
using jpar::Result;
using jpar::Status;

bool IsChristmasFrom2003(const std::string& date) {
  return date.size() >= 8 && date.substr(0, 4) >= "2003" &&
         date.substr(4, 4) == "1225";
}

Result<std::vector<std::string>> DocStoreQ0b(const jpar::DocStore& db) {
  std::vector<std::string> out;
  JPAR_RETURN_NOT_OK(db.ForEachDocument([&](const Item& doc) -> Status {
    std::optional<Item> results = doc.GetField("results");
    if (!results.has_value() || !results->is_array()) return Status::OK();
    for (const Item& m : results->array()) {
      std::optional<Item> date = m.GetField("date");
      if (date.has_value() && date->is_string() &&
          IsChristmasFrom2003(date->string_value())) {
        out.push_back(date->string_value());
      }
    }
    return Status::OK();
  }));
  return out;
}

Result<std::map<std::string, int64_t>> ScanQ1(
    const std::function<Status(
        const std::function<Status(const Item&)>&)>& for_each) {
  std::map<std::string, int64_t> counts;
  JPAR_RETURN_NOT_OK(for_each([&](const Item& doc) -> Status {
    // Accepts wrapped files ({"root": [...]}) and unwrapped documents.
    std::optional<Item> root = doc.GetField("root");
    auto per_record = [&](const Item& record) {
      std::optional<Item> results = record.GetField("results");
      if (!results.has_value() || !results->is_array()) return;
      for (const Item& m : results->array()) {
        std::optional<Item> type = m.GetField("dataType");
        std::optional<Item> date = m.GetField("date");
        if (type.has_value() && type->is_string() &&
            type->string_value() == "TMIN" && date.has_value() &&
            date->is_string()) {
          ++counts[date->string_value()];
        }
      }
    };
    if (root.has_value() && root->is_array()) {
      for (const Item& record : root->array()) per_record(record);
    } else {
      per_record(doc);
    }
    return Status::OK();
  }));
  return counts;
}

Result<double> DocStoreQ2(const jpar::DocStore& db) {
  // $unwind results + $project the join fields.
  JPAR_ASSIGN_OR_RETURN(
      std::vector<Item> measurements,
      db.UnwindProject("results", {"station", "date", "dataType", "value"}));
  // Join TMIN x TMAX on (station, date).
  std::map<std::pair<std::string, std::string>, std::vector<int64_t>> tmin;
  double sum = 0;
  int64_t count = 0;
  for (const Item& m : measurements) {
    std::optional<Item> type = m.GetField("dataType");
    if (!type.has_value() || !type->is_string()) continue;
    if (type->string_value() != "TMIN") continue;
    tmin[{m.GetField("station")->string_value(),
          m.GetField("date")->string_value()}]
        .push_back(m.GetField("value")->int64_value());
  }
  for (const Item& m : measurements) {
    std::optional<Item> type = m.GetField("dataType");
    if (!type.has_value() || !type->is_string()) continue;
    if (type->string_value() != "TMAX") continue;
    auto it = tmin.find({m.GetField("station")->string_value(),
                         m.GetField("date")->string_value()});
    if (it == tmin.end()) continue;
    int64_t mx = m.GetField("value")->int64_value();
    for (int64_t mn : it->second) {
      sum += static_cast<double>(mx - mn);
      ++count;
    }
  }
  return count > 0 ? (sum / static_cast<double>(count)) / 10.0 : 0.0;
}

}  // namespace jparbench
