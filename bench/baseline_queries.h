#ifndef JPAR_BENCH_BASELINE_QUERIES_H_
#define JPAR_BENCH_BASELINE_QUERIES_H_

// Hand-written query implementations for the DocStore (MongoDB model)
// and MemTable (Spark SQL model) baselines. These systems are queried
// through their own APIs (find/aggregate pipelines, DataFrame scans),
// not through JSONiq — mirroring how the paper drove them.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "baselines/docstore.h"
#include "baselines/memtable.h"
#include "common/result.h"
#include "json/item.h"

namespace jparbench {

/// Q0b against a document store holding unwrapped {metadata, results}
/// documents: for every measurement date on a December 25 of 2003+,
/// collect the date string.
jpar::Result<std::vector<std::string>> DocStoreQ0b(const jpar::DocStore& db);

/// Q1 against an in-memory table of documents: count TMIN measurements
/// grouped by date. Returns date -> count.
jpar::Result<std::map<std::string, int64_t>> ScanQ1(
    const std::function<jpar::Status(
        const std::function<jpar::Status(const jpar::Item&)>&)>& for_each);

/// Q2 against a document store: the paper's MongoDB plan — $unwind the
/// results array, $project (station, date, dataType, value), then join
/// TMIN against TMAX on (station, date) and average the differences.
jpar::Result<double> DocStoreQ2(const jpar::DocStore& db);

/// Helper shared by baseline Q0b variants: true for "YYYY1225..."
/// dates with YYYY >= 2003.
bool IsChristmasFrom2003(const std::string& date);

}  // namespace jparbench

#endif  // JPAR_BENCH_BASELINE_QUERIES_H_
