// Figure 19 + Table 2: Spark SQL (MemTable model) vs VXQuery on Q1 for
// growing data sizes (paper: 400/800/1000 MB on one core; scaled:
// 4/8/10 MB x JPAR_BENCH_SCALE).
//
// Paper shape: Spark's query-only time wins on small inputs, the two
// systems meet in the middle, VXQuery wins as data grows — and once
// Spark's load time is charged, VXQuery wins everywhere. Spark also
// cannot load datasets beyond its memory (reported as OOM).

#include <chrono>

#include "baselines/memtable.h"
#include "bench/baseline_queries.h"
#include "bench/bench_common.h"

namespace jparbench {
namespace {

using Clock = std::chrono::steady_clock;

void Run() {
  PrintTableHeader(
      "Figure 19: Q1, Spark SQL vs VXQuery (single core)",
      {"size", "spark-load", "spark-query", "spark-total", "vxquery"});
  for (uint64_t mb : {4, 8, 10}) {
    const Collection& data = SensorData(mb * 1024 * 1024);

    jpar::MemTable spark;
    auto load = spark.Load(data);
    CheckOk(load.status(), "spark load");

    double query_ms = 0;
    for (int i = 0; i < Repeats(); ++i) {
      auto start = Clock::now();
      auto counts = ScanQ1([&](auto fn) { return spark.ForEachDocument(fn); });
      CheckOk(counts.status(), "spark q1");
      query_ms +=
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
    }
    query_ms /= Repeats();

    Engine vx = MakeSensorEngine(data, RuleOptions::All(), 1);
    Measurement vxm = RunQuery(vx, kQ1);

    char size[32];
    std::snprintf(size, sizeof(size), "%llux100MB",
                  static_cast<unsigned long long>(mb));
    PrintTableRow({size, FormatMs(load->load_ms), FormatMs(query_ms),
                   FormatMs(load->load_ms + query_ms),
                   FormatMs(vxm.real_ms)});
  }

  // The OOM cliff: a memory-limited Spark cannot load at all.
  const Collection& big = SensorData(10ull * 1024 * 1024);
  jpar::MemTableOptions limited;
  limited.memory_limit_bytes = 4ull * 1024 * 1024;  // smaller than the data
  jpar::MemTable spark(limited);
  auto load = spark.Load(big);
  std::printf(
      "\nMemory-limited Spark load (4MB limit, ~10MB input): %s\n",
      load.ok() ? "unexpectedly succeeded"
                : load.status().ToString().c_str());
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
