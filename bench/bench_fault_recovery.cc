// Fault-injection and recovery characteristics of the query service:
// (1) how fast a cooperative cancel stops a running scan, (2) service
// behavior when each named fault point fires at increasing
// probabilities — failure accounting, throughput under faults, and
// proof that the service is quiescent (no leaked reservations) and
// serves clean queries afterwards. Scaled by JPAR_BENCH_SCALE.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "runtime/query_context.h"
#include "service/query_service.h"

namespace jparbench {
namespace {

using jpar::FaultInjector;
using jpar::QueryService;
using jpar::QueryTicket;
using jpar::ServiceMetrics;
using jpar::ServiceOptions;
using jpar::Status;
using jpar::StatusCode;
using jpar::StatusCodeToString;
using jpar::SubmitOptions;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// How long after Cancel() does a running query actually stop? The scan
// is slowed with a per-file stall so the query would otherwise run for
// hundreds of milliseconds; the gap between Cancel() and ticket
// completion is the cancellation latency (one batch of work, per
// DESIGN.md §8).
void BenchCancelLatency(const Collection& data) {
  PrintTableHeader(
      "Cancellation latency: Cancel() -> ticket done, scan stalled per file",
      {"stall/file", "cancel after", "abort latency", "query status"});

  for (int stall_ms : {1, 5}) {
    FaultInjector faults;
    faults.ArmStall(FaultInjector::kScanIOError, stall_ms);

    std::mutex mu;
    std::condition_variable cv;
    bool started = false;
    ServiceOptions options;
    options.worker_threads = 1;
    options.fault_injector = &faults;
    options.on_query_start = [&](std::string_view) {
      std::lock_guard<std::mutex> lock(mu);
      started = true;
      cv.notify_all();
    };
    QueryService service(options);
    service.catalog()->RegisterCollection("/sensors", data);
    auto session = service.CreateSession();

    QueryTicket t = session->Submit(kQ0);
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return started; });
    }
    // Let the scan crawl for a moment, then pull the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    auto cancel_at = std::chrono::steady_clock::now();
    t.Cancel();
    t.Wait();
    double abort_ms = MsSince(cancel_at);

    PrintTableRow({std::to_string(stall_ms) + " ms", "10 ms",
                   FormatMs(abort_ms),
                   std::string(StatusCodeToString(t.status().code()))});
  }
}

// A workload of kQ1 group-bys with one fault point armed at increasing
// probability: every query either succeeds or fails with the injected
// error; afterwards the admission state must be fully released and a
// clean query must succeed.
void BenchFaultPoint(const Collection& data, std::string_view point,
                     Status error) {
  std::printf("\nFault point %.*s:\n", static_cast<int>(point.size()),
              point.data());
  PrintTableHeader(
      "  20 x Q1 with the fault armed",
      {"p(fault)", "wall", "ok", "failed", "injected", "recovered"});

  for (double p : {0.0, 0.1, 0.5, 1.0}) {
    FaultInjector faults(/*seed=*/1234);
    ServiceOptions options;
    options.worker_threads = 2;
    options.max_queue_depth = 64;
    options.fault_injector = &faults;
    QueryService service(options);
    service.catalog()->RegisterCollection("/sensors", data);
    auto session = service.CreateSession();

    if (p > 0) faults.ArmProbability(point, p, error);
    auto start = std::chrono::steady_clock::now();
    std::vector<QueryTicket> tickets;
    for (int i = 0; i < 20; ++i) tickets.push_back(session->Submit(kQ1));
    uint64_t ok = 0, failed = 0;
    for (QueryTicket& t : tickets) {
      Status st = t.status();
      if (st.ok()) {
        ++ok;
      } else if (st.code() == error.code()) {
        ++failed;
      } else {
        CheckOk(st, "unexpected failure under fault injection");
      }
    }
    double wall_ms = MsSince(start);
    uint64_t injected = faults.injected_count(point);

    // Recovery: disarm, then the same service must serve Q1 cleanly
    // with nothing leaked from the failed runs.
    faults.Disarm(point);
    service.Drain();
    ServiceMetrics m = service.Metrics();
    bool quiescent = m.admission.reserved_bytes == 0 &&
                     m.admission.queued == 0 && m.admission.running == 0;
    QueryTicket retry = session->Submit(kQ1);
    bool recovered = quiescent && retry.status().ok();
    if (!retry.status().ok()) CheckOk(retry.status(), "post-fault recovery");

    char pbuf[16];
    std::snprintf(pbuf, sizeof(pbuf), "%.1f", p);
    PrintTableRow({pbuf, FormatMs(wall_ms), std::to_string(ok),
                   std::to_string(failed), std::to_string(injected),
                   recovered ? "yes" : "NO"});
  }
}

// Everything at once: all fault points armed low-probability, deadlines
// on half the submissions, sporadic cancels — the service must keep
// balanced books and end quiescent.
void BenchChaosMix(const Collection& data) {
  FaultInjector faults(/*seed=*/99);
  faults.ArmProbability(FaultInjector::kScanIOError, 0.05,
                        Status::IOError("chaos: scan"));
  faults.ArmProbability(FaultInjector::kExchangeFrameDrop, 0.02,
                        Status::IOError("chaos: exchange"));
  faults.ArmProbability(FaultInjector::kAllocFail, 0.02,
                        Status::ResourceExhausted("chaos: alloc"));

  ServiceOptions options;
  options.worker_threads = 4;
  options.max_queue_depth = 256;
  options.fault_injector = &faults;
  QueryService service(options);
  service.catalog()->RegisterCollection("/sensors", data);

  auto start = std::chrono::steady_clock::now();
  constexpr int kClients = 4;
  constexpr int kPerClient = 15;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&service, c] {
      auto session = service.CreateSession();
      for (int i = 0; i < kPerClient; ++i) {
        const NamedQuery& q =
            kAllQueries[static_cast<size_t>(c + i) %
                        (sizeof(kAllQueries) / sizeof(kAllQueries[0]))];
        SubmitOptions submit;
        // Every other submission carries a (generous) deadline; 0
        // falls back to the session default of none.
        submit.deadline_ms = i % 2 == 0 ? 500 : 0;
        QueryTicket t = session->Submit(q.text, submit);
        if (i % 5 == 4) t.Cancel();
        t.Wait();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  double wall_ms = MsSince(start);
  service.Drain();

  ServiceMetrics m = service.Metrics();
  std::printf(
      "\nChaos mix: %d clients x %d queries, all faults armed, deadlines and "
      "cancels in the mix (%s):\n%s",
      kClients, kPerClient, FormatMs(wall_ms).c_str(), m.ToString().c_str());
  bool balanced = m.succeeded + m.failed + m.rejected == m.submitted;
  bool quiescent = m.admission.reserved_bytes == 0 && m.admission.queued == 0 &&
                   m.admission.running == 0;
  std::printf("books balanced: %s, admission quiescent: %s\n",
              balanced ? "yes" : "NO", quiescent ? "yes" : "NO");
  if (!balanced || !quiescent) {
    CheckOk(Status::Internal("fault-recovery invariants violated"),
            "chaos mix");
  }
}

void Run() {
  const Collection& data = SensorData(512 * 1024);

  BenchCancelLatency(data);
  BenchFaultPoint(data, FaultInjector::kScanIOError,
                  Status::IOError("injected: scan read failed"));
  BenchFaultPoint(data, FaultInjector::kExchangeFrameDrop,
                  Status::IOError("injected: frame dropped"));
  BenchFaultPoint(data, FaultInjector::kAllocFail,
                  Status::ResourceExhausted("injected: allocation failed"));
  BenchChaosMix(data);
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
