// Cost-model plan-choice bench (DESIGN.md §15). Measures two levers
// the sampled-statistics planner pulls, each against the same plan
// compiled stats-off, on identical on-disk NDJSON corpora:
//
//   1. join build side — a skewed join written small-first joins a
//      padded 30k-row collection; stats flip the hash build to the
//      small side instead of buffering the heavy side,
//   2. group-by spill fanout — a high-cardinality group-by under a
//      tiny memory budget; the cardinality-derived fanout hint widens
//      the spill partitioning so recursive repartition passes shrink.
//
// Every stats-on run is checked row-identical to its stats-off run
// (the cost model's core invariant). Besides the stdout tables it
// writes BENCH_cost_model.json to the current directory
// (run_benches.sh runs from the repo root).

#include <dirent.h>
#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "stats/collection_stats.h"

namespace jparbench {
namespace {

using Clock = std::chrono::steady_clock;
using jpar::CompiledQuery;
using jpar::ExecOptions;
using jpar::Item;
using jpar::JsonFile;
using jpar::SpillMode;
using jpar::StatsDisabledByEnv;
using jpar::StatsMode;
using jpar::StatsStore;

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Bench corpus directory; files (and their stats/cache sidecars) are
/// removed on exit.
class BenchDir {
 public:
  BenchDir() {
    std::string tmpl = "/tmp/jpar_bench_cost_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = ::mkdtemp(buf.data());
    if (made == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      std::exit(1);
    }
    dir_ = made;
  }

  ~BenchDir() {
    if (DIR* d = ::opendir(dir_.c_str())) {
      while (struct dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        std::remove((dir_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(dir_.c_str());
  }

  std::string Write(const std::string& name, const std::string& text) {
    std::string path = dir_ + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    return path;
  }

 private:
  std::string dir_;
};

void RegisterNdjson(Engine* engine, BenchDir* dir, const std::string& coll,
                    const std::string& stem, const std::string& text) {
  Collection c;
  c.files.push_back(JsonFile::FromPath(dir->Write(stem + ".ndjson", text)));
  engine->catalog()->RegisterCollection(coll, std::move(c));
}

struct Timed {
  double ms = 0;
  uint64_t rows = 0;
  uint64_t merge_passes = 0;
  uint64_t peak_bytes = 0;
  std::vector<std::string> row_text;
};

/// Compiles under `mode`, executes Repeats() times, and averages.
Timed Measure(const Engine& engine, const char* query, ExecOptions exec,
              StatsMode mode, const char* context) {
  exec.stats_mode = mode;
  auto compiled = engine.Compile(query, RuleOptions::All(), exec);
  CheckOk(compiled.status(), context);
  Timed t;
  for (int r = 0; r < Repeats(); ++r) {
    auto start = Clock::now();
    auto out = engine.Execute(*compiled, exec);
    auto end = Clock::now();
    CheckOk(out.status(), context);
    t.ms += MsBetween(start, end);
    t.rows = out->items.size();
    t.merge_passes = out->stats.spill_merge_passes;
    if (out->stats.peak_retained_bytes > t.peak_bytes) {
      t.peak_bytes = out->stats.peak_retained_bytes;
    }
    if (r == 0) {
      t.row_text.reserve(out->items.size());
      for (const Item& item : out->items) {
        t.row_text.push_back(item.ToJsonString());
      }
    }
  }
  t.ms /= Repeats();
  return t;
}

void CheckIdentical(const Timed& off, const Timed& on, const char* what) {
  if (off.row_text != on.row_text) {
    std::fprintf(stderr, "FATAL: %s: stats-on rows differ from stats-off\n",
                 what);
    std::exit(1);
  }
}

/// Runs `query` once with sampling on so .jstats sidecars exist before
/// the measured stats-on compile.
void WarmStats(const Engine& engine, const std::string& query,
               ExecOptions exec) {
  exec.stats_mode = StatsMode::kAuto;
  auto compiled = engine.Compile(query, RuleOptions::All(), exec);
  CheckOk(compiled.status(), "stats warm compile");
  CheckOk(engine.Execute(*compiled, exec).status(), "stats warm run");
}

// ---------------------------------------------------------------------
// 1. Join build side

std::string JoinSection(BenchDir* dir) {
  const double scale = ScaleFactor();
  const int small_rows = 150;
  const int big_rows = static_cast<int>(30000 * scale);
  std::string small;
  for (int i = 0; i < small_rows; ++i) {
    small += "{\"k\": " + std::to_string(i % 200) +
             ", \"v\": " + std::to_string(i) + "}\n";
  }
  const std::string pad(160, 'x');
  std::string big;
  for (int i = 0; i < big_rows; ++i) {
    big += "{\"k\": " + std::to_string(i % 200) +
           ", \"v\": " + std::to_string(i) + ", \"pad\": \"" + pad + "\"}\n";
  }

  EngineOptions options;
  options.rules = RuleOptions::All();
  Engine engine(options);
  RegisterNdjson(&engine, dir, "/small", "small", small);
  RegisterNdjson(&engine, dir, "/big", "big", big);

  // Small side first: the stats-off default buffers the second (heavy)
  // side; stats flip the build to the small side.
  const char* join = R"(
    for $a in collection("/small")
    for $b in collection("/big")
    where $a("k") eq $b("k")
    return $a("v") + $b("v"))";
  ExecOptions exec;
  exec.partitions = 2;

  WarmStats(engine, R"(for $a in collection("/small") return $a)", exec);
  WarmStats(engine, R"(for $b in collection("/big") return $b)", exec);

  Timed off = Measure(engine, join, exec, StatsMode::kOff, "join stats-off");
  Timed on = Measure(engine, join, exec, StatsMode::kForced, "join stats-on");
  CheckIdentical(off, on, "join build side");

  double speedup = off.ms / (on.ms > 0 ? on.ms : 1);
  PrintTableHeader("Cost model: skewed join build side",
                   {"config", "time", "peak mem", "rows"});
  PrintTableRow({"stats-off (build big)", FormatMs(off.ms),
                 FormatBytes(off.peak_bytes), std::to_string(off.rows)});
  PrintTableRow({"stats-on  (build small)", FormatMs(on.ms),
                 FormatBytes(on.peak_bytes), std::to_string(on.rows)});
  char speedup_text[32];
  std::snprintf(speedup_text, sizeof(speedup_text), "%.2fx", speedup);
  std::printf("  plan-choice speedup: %s\n", speedup_text);

  char json[256];
  std::snprintf(json, sizeof(json),
                "{\"off_ms\": %.3f, \"on_ms\": %.3f, \"speedup\": %.3f, "
                "\"off_peak_bytes\": %llu, \"on_peak_bytes\": %llu, "
                "\"rows\": %llu}",
                off.ms, on.ms, speedup,
                static_cast<unsigned long long>(off.peak_bytes),
                static_cast<unsigned long long>(on.peak_bytes),
                static_cast<unsigned long long>(off.rows));
  return json;
}

// ---------------------------------------------------------------------
// 2. Group-by spill fanout

std::string FanoutSection(BenchDir* dir) {
  const double scale = ScaleFactor();
  const int rows = static_cast<int>(120000 * scale);
  std::string groups;
  for (int i = 0; i < rows; ++i) {
    groups += "{\"k\": " + std::to_string(i % 30000) +
              ", \"v\": " + std::to_string(i) + "}\n";
  }

  EngineOptions options;
  options.rules = RuleOptions::All();
  Engine engine(options);
  RegisterNdjson(&engine, dir, "/groups", "groups", groups);

  const char* groupby = R"(
    for $g in collection("/groups")
    group by $k := $g("k")
    return count($g))";
  ExecOptions exec;
  exec.partitions = 2;
  exec.spill = SpillMode::kEnabled;
  exec.memory_limit_bytes = 96 * 1024;

  WarmStats(engine, R"(for $g in collection("/groups") return $g)", exec);

  Timed off = Measure(engine, groupby, exec, StatsMode::kOff,
                      "group-by stats-off");
  Timed on = Measure(engine, groupby, exec, StatsMode::kForced,
                     "group-by stats-on");
  CheckIdentical(off, on, "group-by spill fanout");

  double speedup = off.ms / (on.ms > 0 ? on.ms : 1);
  PrintTableHeader("Cost model: group-by spill fanout",
                   {"config", "time", "merge passes", "rows"});
  PrintTableRow({"stats-off (fanout 8)", FormatMs(off.ms),
                 std::to_string(off.merge_passes), std::to_string(off.rows)});
  PrintTableRow({"stats-on  (fanout hint)", FormatMs(on.ms),
                 std::to_string(on.merge_passes), std::to_string(on.rows)});
  char speedup_text[32];
  std::snprintf(speedup_text, sizeof(speedup_text), "%.2fx", speedup);
  std::printf("  plan-choice speedup: %s\n", speedup_text);

  char json[256];
  std::snprintf(json, sizeof(json),
                "{\"off_ms\": %.3f, \"on_ms\": %.3f, \"speedup\": %.3f, "
                "\"off_merge_passes\": %llu, \"on_merge_passes\": %llu, "
                "\"rows\": %llu}",
                off.ms, on.ms, speedup,
                static_cast<unsigned long long>(off.merge_passes),
                static_cast<unsigned long long>(on.merge_passes),
                static_cast<unsigned long long>(off.rows));
  return json;
}

void RunBench() {
  if (StatsDisabledByEnv()) {
    // The kill-switch job still runs the bench; record a no-op so the
    // freshness check passes without pretending a win was measured.
    std::printf("JPAR_DISABLE_STATS set; cost-model levers inert\n");
    UpdateBenchJsonSection("BENCH_cost_model.json", "disabled",
                           "{\"stats_disabled\": true}");
    return;
  }
  StatsStore::Instance().Clear();
  BenchDir dir;
  std::string join = JoinSection(&dir);
  std::string fanout = FanoutSection(&dir);
  UpdateBenchJsonSection("BENCH_cost_model.json", "join_build_side", join);
  UpdateBenchJsonSection("BENCH_cost_model.json", "groupby_spill_fanout",
                         fanout);
  std::printf("\nwrote BENCH_cost_model.json\n");
}

}  // namespace
}  // namespace jparbench

int main(int argc, char** argv) {
  jparbench::InitBenchArgs(argc, argv);
  jparbench::RunBench();
  return 0;
}
