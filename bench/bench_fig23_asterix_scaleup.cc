// Figure 23: VXQuery vs AsterixDB cluster scale-up on Q0b and Q2
// (88 GB-scaled per node, 1..9 nodes). Both stay roughly flat; the
// VXQuery curve sits below the AsterixDB curve.

#include "baselines/asterix_like.h"
#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  // Per-node size reduced vs Fig. 21 for the same reason as Fig. 22:
  // the AsterixDB model is ~10x slower by design.
  const uint64_t per_node = 1536ull * 1024;
  const NamedQuery queries[] = {{"Q0b", kQ0b}, {"Q2", kQ2}};

  for (const NamedQuery& q : queries) {
    PrintTableHeader(
        std::string("Figure 23: scale-up, VXQuery vs AsterixDB — ") + q.name,
        {"nodes", "VXQuery", "AsterixDB"});
    for (int nodes = 1; nodes <= 9; ++nodes) {
      const Collection& data =
          SensorData(per_node * static_cast<uint64_t>(nodes));
      Engine vx = MakeSensorEngine(data, RuleOptions::All(), nodes * 4, 4);
      Measurement vxm = RunQuery(vx, q.text);

      jpar::AsterixLikeOptions aopts;
      aopts.exec.partitions = nodes * 4;
      aopts.exec.partitions_per_node = 4;
      jpar::AsterixLike asterix(aopts);
      CheckOk(asterix.Register("/sensors", data).status(), "register");
      auto r = asterix.Run(q.text);
      CheckOk(r.status(), "asterix run");

      PrintTableRow({std::to_string(nodes), FormatMs(vxm.makespan_ms),
                     FormatMs(r->stats.makespan_ms)});
    }
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
