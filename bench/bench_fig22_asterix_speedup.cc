// Figure 22: VXQuery vs AsterixDB cluster speed-up on Q0b and Q2
// (803 GB-scaled, 1..9 nodes). AsterixDB = this engine without the
// pipelining pushdown rules (see baselines/asterix_like.h); it scales
// with nodes too, but each node does strictly more work (whole arrays
// materialized, no scan projection), so VXQuery stays below it at
// every cluster size — the paper's shape.

#include "baselines/asterix_like.h"
#include "bench/bench_common.h"

namespace jparbench {
namespace {

void Run() {
  // Smaller base than Fig. 20: the AsterixDB model materializes whole
  // arrays per file (that is the point), so its runs cost ~10x more.
  const Collection& data = SensorData(12ull * 1024 * 1024);
  const NamedQuery queries[] = {{"Q0b", kQ0b}, {"Q2", kQ2}};

  for (const NamedQuery& q : queries) {
    PrintTableHeader(
        std::string("Figure 22: speed-up, VXQuery vs AsterixDB — ") + q.name,
        {"nodes", "VXQuery", "AsterixDB"});
    for (int nodes = 1; nodes <= 9; ++nodes) {
      Engine vx = MakeSensorEngine(data, RuleOptions::All(), nodes * 4, 4);
      Measurement vxm = RunQuery(vx, q.text);

      jpar::AsterixLikeOptions aopts;
      aopts.exec.partitions = nodes * 4;
      aopts.exec.partitions_per_node = 4;
      jpar::AsterixLike asterix(aopts);
      CheckOk(asterix.Register("/sensors", data).status(), "register");
      // One run per point: the AsterixDB model is slow by design and
      // its single-run variance is far below the gap being plotted.
      auto r = asterix.Run(q.text);
      CheckOk(r.status(), "asterix run");
      double asterix_ms = r->stats.makespan_ms;

      PrintTableRow({std::to_string(nodes), FormatMs(vxm.makespan_ms),
                     FormatMs(asterix_ms)});
    }
  }
}

}  // namespace
}  // namespace jparbench

int main() {
  jparbench::Run();
  return 0;
}
