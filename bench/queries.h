#ifndef JPAR_BENCH_QUERIES_H_
#define JPAR_BENCH_QUERIES_H_

// The paper's evaluation queries, verbatim (Listings 7-11, §5.2).

namespace jparbench {

inline constexpr const char* kQ0 = R"(
  for $r in collection("/sensors")("root")()("results")()
  let $datetime := dateTime(data($r("date")))
  where year-from-dateTime($datetime) ge 2003
    and month-from-dateTime($datetime) eq 12
    and day-from-dateTime($datetime) eq 25
  return $r)";

inline constexpr const char* kQ0b = R"(
  for $r in collection("/sensors")("root")()("results")()("date")
  let $datetime := dateTime(data($r))
  where year-from-dateTime($datetime) ge 2003
    and month-from-dateTime($datetime) eq 12
    and day-from-dateTime($datetime) eq 25
  return $r)";

inline constexpr const char* kQ1 = R"(
  for $r in collection("/sensors")("root")()("results")()
  where $r("dataType") eq "TMIN"
  group by $date := $r("date")
  return count($r("station")))";

inline constexpr const char* kQ1b = R"(
  for $r in collection("/sensors")("root")()("results")()
  where $r("dataType") eq "TMIN"
  group by $date := $r("date")
  return count(for $i in $r return $i("station")))";

inline constexpr const char* kQ2 = R"(
  avg(
    for $r_min in collection("/sensors")("root")()("results")()
    for $r_max in collection("/sensors")("root")()("results")()
    where $r_min("station") eq $r_max("station")
      and $r_min("date") eq $r_max("date")
      and $r_min("dataType") eq "TMIN"
      and $r_max("dataType") eq "TMAX"
    return $r_max("value") - $r_min("value")
  ) div 10)";

struct NamedQuery {
  const char* name;
  const char* text;
};

inline constexpr NamedQuery kAllQueries[] = {
    {"Q0", kQ0}, {"Q0b", kQ0b}, {"Q1", kQ1}, {"Q1b", kQ1b}, {"Q2", kQ2},
};

}  // namespace jparbench

#endif  // JPAR_BENCH_QUERIES_H_
